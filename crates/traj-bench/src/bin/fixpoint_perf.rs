//! E12 — Fixed-point performance: cached vs pre-cache analysis.
//!
//! Times `analyze_all` (interference-structure cache, Jacobi and
//! Gauss–Seidel fixed points) against the retained pre-cache reference
//! implementation on the scalability meshes (20 nodes, growing flow
//! counts), checks the bounds are bit-identical, and writes the
//! measurements to `BENCH_fixpoint.json` in the working directory.
//!
//! Run: `cargo run --release -p traj-bench --bin fixpoint_perf`

use std::time::Instant;

use serde::Serialize;
use traj_analysis::reference::ReferenceAnalyzer;
use traj_analysis::{
    analyze_all, analyze_all_reference, AnalysisConfig, Analyzer, FixpointStrategy, SetReport,
};
use traj_bench::render_table;
use traj_model::gen::{random_mesh, MeshParams};
use traj_model::FlowSet;

const NODES: u32 = 20;
const FLOW_COUNTS: [u32; 4] = [5, 10, 20, 40];
const SEED: u64 = 1;
const REPS: usize = 3;

#[derive(Serialize)]
struct Entry {
    flows: u32,
    /// Total hops (sum of path lengths) in the instance.
    hops: usize,
    /// `Smax` rounds to convergence.
    rounds_jacobi: usize,
    rounds_gauss_seidel: usize,
    rounds_reference: usize,
    /// Wall-clock per `analyze_all` call (best of `REPS`).
    wall_ms_jacobi: f64,
    wall_ms_gauss_seidel: f64,
    wall_ms_auto: f64,
    wall_ms_reference: f64,
    /// `wall_ms_reference / wall_ms_jacobi`.
    speedup: f64,
    /// `wall_ms_reference / wall_ms_auto`.
    speedup_auto: f64,
    /// Strategy the default `Auto` config resolved to (from telemetry).
    chosen_auto: String,
    /// All engines produced identical bounds.
    bounds_match: bool,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    nodes: u32,
    seed: u64,
    reps: usize,
    entries: Vec<Entry>,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn measure(set: &FlowSet) -> Entry {
    let jacobi_cfg = AnalysisConfig {
        fixpoint: FixpointStrategy::Jacobi,
        ..Default::default()
    };
    let gauss_cfg = AnalysisConfig {
        fixpoint: FixpointStrategy::GaussSeidel,
        ..Default::default()
    };

    let auto_cfg = AnalysisConfig::default();

    let (wall_ms_jacobi, jacobi): (f64, SetReport) =
        time_best(REPS, || analyze_all(set, &jacobi_cfg));
    let (wall_ms_gauss_seidel, gauss) = time_best(REPS, || analyze_all(set, &gauss_cfg));
    let (wall_ms_auto, auto) = time_best(REPS, || analyze_all(set, &auto_cfg));
    let (wall_ms_reference, reference) =
        time_best(REPS, || analyze_all_reference(set, &jacobi_cfg));

    let chosen_auto = auto
        .telemetry()
        .map(|t| t.chosen.name().to_string())
        .unwrap_or_else(|| "unknown".to_string());

    let rounds_jacobi = Analyzer::new(set, &jacobi_cfg)
        .map(|an| an.smax_rounds())
        .unwrap_or(0);
    let rounds_gauss_seidel = Analyzer::new(set, &gauss_cfg)
        .map(|an| an.smax_rounds())
        .unwrap_or(0);
    let rounds_reference = ReferenceAnalyzer::new(set, &jacobi_cfg)
        .map(|an| an.smax_rounds())
        .unwrap_or(0);

    Entry {
        flows: set.len() as u32,
        hops: set.flows().iter().map(|f| f.path.len()).sum(),
        rounds_jacobi,
        rounds_gauss_seidel,
        rounds_reference,
        wall_ms_jacobi,
        wall_ms_gauss_seidel,
        wall_ms_auto,
        wall_ms_reference,
        speedup: wall_ms_reference / wall_ms_jacobi.max(1e-9),
        speedup_auto: wall_ms_reference / wall_ms_auto.max(1e-9),
        chosen_auto,
        bounds_match: jacobi.bounds() == reference.bounds()
            && gauss.bounds() == reference.bounds()
            && auto.bounds() == reference.bounds(),
    }
}

fn main() {
    let mut entries = Vec::new();
    for &flows in &FLOW_COUNTS {
        // Short paths and moderate load keep the fixed point convergent
        // across all sizes (longer paths at this scale diverge, which
        // would time the overload bail-out instead of the iteration).
        let params = MeshParams {
            nodes: NODES,
            flows,
            path_len: (2, 4),
            max_utilisation: 0.5,
            ..Default::default()
        };
        let Ok(set) = random_mesh(SEED, &params) else {
            continue;
        };
        entries.push(measure(&set));
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.flows.to_string(),
                e.hops.to_string(),
                format!("{:.2}", e.wall_ms_reference),
                format!("{:.2}", e.wall_ms_jacobi),
                format!("{:.2}", e.wall_ms_gauss_seidel),
                format!("{:.2}", e.wall_ms_auto),
                e.chosen_auto.clone(),
                format!("{:.1}x", e.speedup_auto),
                format!(
                    "{}/{}/{}",
                    e.rounds_reference, e.rounds_jacobi, e.rounds_gauss_seidel
                ),
                if e.bounds_match { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("E12 - fixpoint performance ({NODES} nodes, best of {REPS})"),
            &[
                "flows",
                "hops",
                "ref ms",
                "jacobi ms",
                "gs ms",
                "auto ms",
                "auto chose",
                "speedup",
                "rounds r/j/g",
                "match",
            ],
            &rows,
        )
    );

    let out = Output {
        experiment: "fixpoint_perf".to_string(),
        nodes: NODES,
        seed: SEED,
        reps: REPS,
        entries,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialisable");
    std::fs::write("BENCH_fixpoint.json", &json).expect("write BENCH_fixpoint.json");
    println!("wrote BENCH_fixpoint.json");

    let worst = out
        .entries
        .iter()
        .map(|e| e.speedup)
        .fold(f64::INFINITY, f64::min);
    assert!(
        out.entries.iter().all(|e| e.bounds_match),
        "cached and reference bounds diverged"
    );

    // Regression guard for the Auto strategy (the pre-fix default ran
    // Jacobi everywhere and was up to 3.6x *slower* than the reference
    // at 5 flows; the cached engines also trail the reference sweep
    // below ~8 flows, where cache construction dominates). The
    // selection itself is deterministic; the timing check carries
    // generous slack (1.5x + 2ms absolute) so a noisy CI box cannot
    // flake it while a reintroduced wrong-strategy-at-small-size
    // regression (3x+) still trips it.
    use traj_analysis::config::{AUTO_JACOBI_MIN_FLOWS, AUTO_REFERENCE_MAX_FLOWS};
    for e in &out.entries {
        let expected = if (e.flows as usize) < AUTO_REFERENCE_MAX_FLOWS {
            "reference"
        } else if (e.flows as usize) < AUTO_JACOBI_MIN_FLOWS {
            "gauss_seidel"
        } else {
            "jacobi"
        };
        assert_eq!(
            e.chosen_auto, expected,
            "Auto mis-selected at {} flows",
            e.flows
        );
        let best = e
            .wall_ms_jacobi
            .min(e.wall_ms_gauss_seidel)
            .min(e.wall_ms_reference);
        assert!(
            e.wall_ms_auto <= best * 1.5 + 2.0,
            "Auto ({:.2}ms) far off the best explicit strategy ({best:.2}ms) at {} flows",
            e.wall_ms_auto,
            e.flows
        );
    }
    println!("minimum speedup across sizes: {worst:.1}x (auto selection verified)");
}
