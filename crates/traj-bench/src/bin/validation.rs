//! E8 — Soundness validation: analytical bounds vs adversarial simulation.
//!
//! For the paper example and a batch of random meshes, runs the
//! adversarial offset search and verifies `observed ≤ bound` for the
//! trajectory analysis (default mode), reporting the tightness margin.
//!
//! Run: `cargo run --release -p traj-bench --bin validation`

use traj_analysis::{analyze_all, AnalysisConfig};
use traj_bench::render_table;
use traj_model::examples::paper_example;
use traj_model::gen::{random_mesh, MeshParams};
use traj_sim::{validate_bounds, AdversaryParams};

fn main() {
    let cfg = AnalysisConfig::default();
    let params = AdversaryParams {
        trials: 300,
        ..Default::default()
    };

    // Paper example, per flow.
    let set = paper_example();
    let report = analyze_all(&set, &cfg);
    let rows_v = validate_bounds(&set, &report.bounds(), &params);
    let rows: Vec<Vec<String>> = rows_v
        .iter()
        .map(|r| {
            vec![
                format!("tau_{}", r.flow),
                r.bound.unwrap().to_string(),
                r.observed.to_string(),
                r.margin.unwrap().to_string(),
                if r.sound {
                    "ok".into()
                } else {
                    "VIOLATED".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Paper example: trajectory bound vs adversarial simulation",
            &["flow", "bound", "observed", "margin", "sound"],
            &rows,
        )
    );

    // Random mesh batch.
    let mut total_flows = 0usize;
    let mut violations = 0usize;
    let mut margin_sum = 0i64;
    let mut bounded = 0usize;
    for seed in 0..25u64 {
        let Ok(set) = random_mesh(
            seed,
            &MeshParams {
                flows: 7,
                nodes: 9,
                max_utilisation: 0.6,
                ..Default::default()
            },
        ) else {
            eprintln!("seed {seed}: generator produced no valid set, skipping");
            continue;
        };
        let report = analyze_all(&set, &cfg);
        let rows = validate_bounds(
            &set,
            &report.bounds(),
            &AdversaryParams {
                trials: 40,
                ..Default::default()
            },
        );
        for r in rows {
            total_flows += 1;
            if !r.sound {
                violations += 1;
                eprintln!("VIOLATION: seed {seed} flow {}", r.flow);
            }
            if let Some(m) = r.margin {
                margin_sum += m;
                bounded += 1;
            }
        }
    }
    println!(
        "random meshes: {total_flows} flows over 25 seeds, {violations} soundness violations, \
         mean margin {:.1} ticks",
        margin_sum as f64 / bounded.max(1) as f64
    );
    assert_eq!(violations, 0, "soundness contract must hold");
    println!("all bounds sound  [ok]");
}
