//! E20 — Tiered admission fast path: network-calculus screen in front
//! of the trajectory fixed point.
//!
//! On clustered instances of 250–1000 standing flows (the same
//! independent-island shape as E15), measures the two legs the tiered
//! controller accelerates:
//!
//! * **what-if latency** — [`evaluate_whatif_screened`] (an O(path)
//!   Charny screen over the published [`AggregateCache`]) against the
//!   exact [`evaluate_whatif`] (a warm `ConvergedState::extend`), p50
//!   per-call latency across a candidate sweep;
//! * **pipelined admit storm** — a [`TieredPolicy::Screened`]
//!   controller admitting candidates in bursts (screen hits append in
//!   O(path), one deferred settlement per burst folds the suffix with
//!   `extend_many`) against a [`TieredPolicy::TrajectoryOnly`]
//!   controller paying one warm fixed point per admit.
//!
//! Every screened decision is checked against the exact engine —
//! admit/reject/invalid identity per candidate, screen bounds
//! dominating the exact trajectory WCRTs, and the settled standing
//! bounds bit-identical between the tiered and pure controllers. The
//! measurements go to `BENCH_tiered.json`; the binary asserts the
//! ratio gates (≥5x what-if p50 and ≥3x admit storm at 1000 standing
//! flows) so a stale artifact cannot hide a regression.
//!
//! Run: `cargo run --release -p traj-bench --bin tiered_perf`

use std::time::Instant;

use serde::Serialize;
use traj_analysis::{AnalysisConfig, ConvergedState};
use traj_bench::{percentile, render_table};
use traj_diffserv::{
    evaluate_whatif, evaluate_whatif_screened, AdmissionController, AdmissionDecision, TieredPolicy,
};
use traj_model::{FlowSet, Network, Path, SporadicFlow};
use traj_netcalc::AggregateCache;

const NODES_PER_CLUSTER: u32 = 10;
const FLOWS_PER_CLUSTER: u32 = 5;
const FLOW_COUNTS: [u32; 3] = [250, 500, 1000];
const REPS: usize = 5;
/// Candidates in the what-if sweep and the admit storm.
const CANDIDATES: usize = 96;
/// Screen-hit admits folded per deferred settlement.
const BURST: usize = 32;
/// Inner iterations when timing the (sub-microsecond) screened path.
const SCREEN_INNER: u32 = 256;
/// Generous-but-finite deadline: far above both the trajectory WCRT
/// and the Charny bound on these lightly-loaded clusters, so the
/// screen passes and both engines admit — the regime the fast path is
/// built for.
const EASY_DEADLINE: i64 = 1_000_000;

/// Disjoint clusters of five chained flows each (see E15): per-node
/// utilisation stays near 7.5%, well under the Charny validity ceiling
/// `nu < 1/(H-1)`, so the screen has real reach.
fn clustered_instance(flows: u32) -> FlowSet {
    let clusters = flows / FLOWS_PER_CLUSTER;
    let network =
        Network::uniform(clusters * NODES_PER_CLUSTER, 1, 1).expect("valid uniform network");
    let mut out = Vec::new();
    let mut id = 0u32;
    for k in 0..clusters {
        let b = k * NODES_PER_CLUSTER;
        for s in 1..=FLOWS_PER_CLUSTER {
            id += 1;
            out.push(
                SporadicFlow::uniform(
                    id,
                    Path::from_ids((b + s..=b + s + 4).collect::<Vec<_>>())
                        .expect("valid cluster path"),
                    200,
                    3,
                    0,
                    EASY_DEADLINE,
                )
                .expect("valid cluster flow"),
            );
        }
    }
    FlowSet::new(network, out).expect("valid clustered instance")
}

/// Two-hop candidates at cluster heads, cycling across clusters.
fn candidates(flows: u32, count: usize) -> Vec<SporadicFlow> {
    let clusters = flows / FLOWS_PER_CLUSTER;
    (0..count)
        .map(|i| {
            let b = (i as u32 % clusters) * NODES_PER_CLUSTER;
            SporadicFlow::uniform(
                10_000 + i as u32,
                Path::from_ids([b + 1, b + 2]).expect("valid candidate path"),
                400,
                2,
                0,
                EASY_DEADLINE,
            )
            .expect("valid candidate")
        })
        .collect()
}

#[derive(Serialize)]
struct Entry {
    flows: u32,
    whatifs: usize,
    /// Median per-call latency of the screened what-if (microseconds).
    p50_us_screened: f64,
    /// Median per-call latency of the exact warm what-if.
    p50_us_exact: f64,
    /// `p50_us_exact / p50_us_screened`.
    whatif_speedup_p50: f64,
    storm_candidates: usize,
    burst: usize,
    storm_ms_tiered: f64,
    storm_ms_pure: f64,
    /// Pure (per-admit warm fixed point) wall over tiered
    /// (screen + per-burst settlement) wall for the same decisions.
    storm_speedup: f64,
    screen_hits: u64,
    screen_fallbacks: u64,
    screen_hit_rate: f64,
    screen_settles: u64,
    /// Tiered and pure decisions agreed on every candidate (admit
    /// kind-identical; reject/invalid bit-identical).
    identical: bool,
    /// Settled standing bounds bit-identical after the storm.
    bounds_identical: bool,
    /// Every screen bound dominated the exact trajectory WCRT.
    screen_bound_dominates: bool,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    reps: usize,
    entries: Vec<Entry>,
}

fn decisions_match(tiered: &AdmissionDecision, pure: &AdmissionDecision) -> bool {
    match (tiered, pure) {
        // The screen's admit carries its own (looser, sound) bound —
        // identity is on the verdict, not the bound value.
        (AdmissionDecision::Admitted { .. }, AdmissionDecision::Admitted { .. }) => true,
        (a, b) => a == b,
    }
}

fn main() {
    let cfg = AnalysisConfig::default();
    let mut entries = Vec::new();

    for &flows in &FLOW_COUNTS {
        let set = clustered_instance(flows);
        let cands = candidates(flows, CANDIDATES);
        let Ok(standing) = ConvergedState::build_ef(&set, &cfg) else {
            eprintln!("standing instance at {flows} flows did not converge");
            continue;
        };
        let screen = AggregateCache::build(&set);

        // What-if sweep: per-candidate p50, screened vs exact. The
        // screened call is far below timer resolution, so it is timed
        // over an inner loop; identity and domination are checked on
        // every candidate along the way.
        let mut screened_us = Vec::with_capacity(cands.len());
        let mut exact_us = Vec::with_capacity(cands.len());
        let mut identical = true;
        let mut dominates = true;
        for cand in &cands {
            let mut best_screen = f64::INFINITY;
            let mut best_exact = f64::INFINITY;
            let mut screened_decision = None;
            let mut exact_decision = None;
            for _ in 0..REPS {
                let t0 = Instant::now();
                for _ in 0..SCREEN_INNER {
                    screened_decision =
                        Some(evaluate_whatif_screened(&screen, &standing, cand.clone()));
                }
                best_screen =
                    best_screen.min(t0.elapsed().as_secs_f64() * 1e6 / f64::from(SCREEN_INNER));
                let t1 = Instant::now();
                exact_decision = Some(evaluate_whatif(&standing, cand.clone()));
                best_exact = best_exact.min(t1.elapsed().as_secs_f64() * 1e6);
            }
            let (Some((sd, was_screened)), Some(ed)) = (screened_decision, exact_decision) else {
                continue;
            };
            identical &= was_screened && decisions_match(&sd, &ed);
            if let (
                AdmissionDecision::Admitted { wcrt: loose },
                AdmissionDecision::Admitted { wcrt: exact },
            ) = (&sd, &ed)
            {
                dominates &= loose >= exact && *loose <= cand.deadline;
            } else {
                dominates = false;
            }
            screened_us.push(best_screen);
            exact_us.push(best_exact);
        }

        // Structural-error identity: duplicate ids and unknown nodes
        // must produce the exact engine's ModelError strings even when
        // the screen vouches for the rate-level feasibility.
        let dup = set.flows()[0].clone();
        let (dup_screened, _) = evaluate_whatif_screened(&screen, &standing, dup.clone());
        identical &= dup_screened == evaluate_whatif(&standing, dup);

        // Pipelined admit storm: both controllers prewarmed, then the
        // same candidates in the same order; the tiered side settles
        // once per burst, the pure side pays a warm solve per admit.
        let mut tiered_proto =
            AdmissionController::new(set.clone(), cfg.clone()).with_tiered(TieredPolicy::Screened);
        tiered_proto.converged_state();
        let mut pure_proto = AdmissionController::new(set.clone(), cfg.clone());
        pure_proto.converged_state();

        let mut best_tiered = f64::INFINITY;
        let mut best_pure = f64::INFINITY;
        let mut storm_result = None;
        for _ in 0..REPS {
            let mut tiered = tiered_proto.clone();
            let t0 = Instant::now();
            let mut tiered_decisions = Vec::with_capacity(cands.len());
            for chunk in cands.chunks(BURST) {
                for cand in chunk {
                    tiered_decisions.push(tiered.try_admit(cand.clone()));
                }
                tiered.converged_state(); // settle the burst
            }
            best_tiered = best_tiered.min(t0.elapsed().as_secs_f64() * 1e3);

            let mut pure = pure_proto.clone();
            let t1 = Instant::now();
            let mut pure_decisions = Vec::with_capacity(cands.len());
            for cand in &cands {
                pure_decisions.push(pure.try_admit(cand.clone()));
            }
            best_pure = best_pure.min(t1.elapsed().as_secs_f64() * 1e3);
            storm_result = Some((tiered, pure, tiered_decisions, pure_decisions));
        }
        let Some((mut tiered, mut pure, tiered_decisions, pure_decisions)) = storm_result else {
            continue;
        };
        identical &= tiered_decisions.len() == pure_decisions.len()
            && tiered_decisions
                .iter()
                .zip(&pure_decisions)
                .all(|(t, p)| decisions_match(t, p));
        let bounds_identical = match (tiered.converged_state(), pure.converged_state()) {
            (Some(t), Some(p)) => t.report().bounds() == p.report().bounds(),
            _ => false,
        };
        let m = tiered.metrics();
        let attempts = m.screen_hits + m.screen_fallbacks;
        let hit_rate = if attempts > 0 {
            m.screen_hits as f64 / attempts as f64
        } else {
            0.0
        };

        entries.push(Entry {
            flows,
            whatifs: screened_us.len(),
            p50_us_screened: percentile(&screened_us, 0.5),
            p50_us_exact: percentile(&exact_us, 0.5),
            whatif_speedup_p50: percentile(&exact_us, 0.5)
                / percentile(&screened_us, 0.5).max(1e-9),
            storm_candidates: cands.len(),
            burst: BURST,
            storm_ms_tiered: best_tiered,
            storm_ms_pure: best_pure,
            storm_speedup: best_pure / best_tiered.max(1e-9),
            screen_hits: m.screen_hits,
            screen_fallbacks: m.screen_fallbacks,
            screen_hit_rate: hit_rate,
            screen_settles: m.screen_settles,
            identical,
            bounds_identical,
            screen_bound_dominates: dominates,
        });
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.flows.to_string(),
                format!("{:.2}", e.p50_us_screened),
                format!("{:.1}", e.p50_us_exact),
                format!("{:.0}x", e.whatif_speedup_p50),
                format!("{:.1}", e.storm_ms_tiered),
                format!("{:.1}", e.storm_ms_pure),
                format!("{:.1}x", e.storm_speedup),
                format!("{:.2}", e.screen_hit_rate),
                if e.identical && e.bounds_identical {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("E20 - tiered admission fast path (storm of {CANDIDATES}, burst {BURST}, best of {REPS})"),
            &[
                "flows",
                "whatif p50 scr (us)",
                "whatif p50 exact (us)",
                "whatif",
                "storm tiered (ms)",
                "storm pure (ms)",
                "storm",
                "hit rate",
                "match",
            ],
            &rows,
        )
    );

    let out = Output {
        experiment: "tiered_perf".to_string(),
        reps: REPS,
        entries,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialisable");
    std::fs::write("BENCH_tiered.json", &json).expect("write BENCH_tiered.json");
    println!("wrote BENCH_tiered.json");

    assert!(!out.entries.is_empty(), "no entry converged");
    for e in &out.entries {
        assert!(
            e.identical,
            "tiered and pure decisions diverged at {} flows",
            e.flows
        );
        assert!(
            e.bounds_identical,
            "settled standing bounds diverged at {} flows",
            e.flows
        );
        assert!(
            e.screen_bound_dominates,
            "a screen bound fell below the exact trajectory WCRT at {} flows",
            e.flows
        );
        assert!(
            e.screen_hit_rate > 0.0,
            "the screen never fired at {} flows",
            e.flows
        );
        if e.flows >= 1000 {
            assert!(
                e.whatif_speedup_p50 >= 5.0,
                "screened what-if p50 must reach 5x over exact at {} flows, got {:.1}x",
                e.flows,
                e.whatif_speedup_p50
            );
            assert!(
                e.storm_speedup >= 3.0,
                "pipelined admit storm must reach 3x over per-admit solves at {} flows, got {:.1}x",
                e.flows,
                e.storm_speedup
            );
        }
    }
    let best = out
        .entries
        .iter()
        .map(|e| e.storm_speedup)
        .fold(0.0, f64::max);
    println!("best tiered admit-storm speedup: {best:.1}x (decision identity verified)");
}
