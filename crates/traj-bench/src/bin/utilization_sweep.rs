//! E9 — Utilisation sweep: where each analysis stops producing bounds.
//!
//! Flows share a line of `HOPS` nodes; per-node utilisation grows with
//! the flow count. The sweep reports, per utilisation point, the bound of
//! the observed flow under: trajectory, holistic, per-hop network
//! calculus, and the Charny–Le Boudec closed form (whose validity ends at
//! `ν = 1/(H−1)` — the crossover the paper's related-work section cites).
//!
//! Run: `cargo run --release -p traj-bench --bin utilization_sweep`

use traj_analysis::{analyze_all, AnalysisConfig};
use traj_bench::render_table;
use traj_holistic::{analyze_holistic, HolisticConfig};
use traj_model::examples::line_topology;
use traj_netcalc::{analyze_netcalc, charny_le_boudec_bound, CharnyParams};

const HOPS: u32 = 5;
const PERIOD: i64 = 240;
const COST: i64 = 4;

fn main() {
    let mut rows = Vec::new();
    for n_flows in [1u32, 3, 6, 9, 12, 15, 20, 30, 40, 50, 58] {
        let Ok(set) = line_topology(n_flows, HOPS, PERIOD, COST, 1, 1) else {
            continue;
        };
        let u = set.max_utilisation();

        let traj = analyze_all(&set, &AnalysisConfig::default());
        let hol = analyze_holistic(&set, &HolisticConfig::default());
        let nc = analyze_netcalc(&set);
        let charny = CharnyParams::from_flow_set(&set).and_then(|p| charny_le_boudec_bound(&p));

        let s = |b: Option<i64>| b.map(|v| v.to_string()).unwrap_or("-".into());
        rows.push(vec![
            format!("{:.3}", u),
            s(traj.bounds()[0]),
            s(hol.bounds()[0]),
            s(nc[0].total),
            s(charny),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "WCRT bound of one flow on a {HOPS}-hop shared line (T={PERIOD}, C={COST}); \
                 Charny validity ends at u = 1/{} = {:.2}",
                HOPS - 1,
                1.0 / (HOPS - 1) as f64
            ),
            &["util", "trajectory", "holistic", "netcalc", "charny"],
            &rows,
        )
    );
    println!("'-' = no bound (analysis diverged or outside validity region)");
}
