//! E18 — serve_perf: sustained load against a live traj-serve daemon.
//!
//! Boots the real daemon (engine + TCP acceptor, `TCP_NODELAY`, the
//! exact stack `traj-serve --listen` runs) on an ephemeral loopback
//! port and drives it through four phases per standing-set size:
//!
//! 1. **identity** — concurrent what-if clients race against the live
//!    daemon while the same candidates are evaluated sequentially
//!    in-process; every wire decision must equal the library answer
//!    integer for integer (the single-writer/many-reader split is
//!    correct, not just fast);
//! 2. **churned load** — worker connections stream what-if decisions
//!    while a churn connection commits admit/release cycles
//!    underneath them (the writer path and the published-view swap
//!    under fire; correctness-gated, latency reported unguarded —
//!    on a loaded box this measures CPU queueing, not the daemon);
//! 3. **quiesced load** — the same what-if stream with the writer
//!    idle: the latency-gated measurement;
//! 4. **baseline** — the same warm decision path in-process
//!    ([`evaluate_whatif`] on the standing [`ConvergedState`]) at the
//!    same thread count. The quiesced wire p99 must stay within
//!    `MAX_P99_RATIO`× of this;
//! 5. **admit throughput** — concurrent connections pipeline windows
//!    of `admit`/`release` cycles at the single writer, the regime the
//!    engine's burst drain batches: queued mutations share one view
//!    publication per burst. The sub-entry records sustained mutation
//!    throughput plus the daemon's `write_ops` / `write_batches`
//!    counters, whose ratio is the observed amortisation.
//!
//! Latency-phase concurrency is `min(8, available_parallelism)`: wire
//! latency compared against an in-process baseline is only meaningful
//! when both are CPU-bound the same way, not when workers queue for
//! one core.
//!
//! Gates (asserted, and recorded in `BENCH_serve.json` for CI): zero
//! protocol errors, zero identity mismatches, quiesced p99 ratio
//! within bound, 100k+ total wire decisions in the full preset.
//!
//! Run: `cargo run --release -p traj-bench --bin serve_perf [-- --smoke]`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::value::field;
use serde::{Serialize, Value};
use traj_analysis::{AnalysisConfig, ConvergedState};
use traj_bench::{percentile, render_table};
use traj_diffserv::{evaluate_whatif, AdmissionController};
use traj_model::{FlowId, FlowSet, Network, Path, SporadicFlow};
use traj_serve::engine::{Engine, EngineConfig};
use traj_serve::protocol::decision_from_value;
use traj_serve::server::TcpServer;

/// Standing-set sizes (matching E15's 10- and 40-flow latency figures).
const FLOW_COUNTS: [u32; 2] = [10, 40];
/// Identity-phase connections (correctness wants many racers).
const IDENTITY_WORKERS: usize = 8;
/// Quiesced wire p99 must stay within this factor of the in-process
/// warm p99 at the same concurrency.
const MAX_P99_RATIO: f64 = 2.0;
/// Requests each admit-phase connection keeps in flight before reading
/// responses back. Workers × depth stays under the default queue depth
/// (64) so nothing is shed as overloaded.
const ADMIT_PIPELINE: usize = 4;

const NODES_PER_CLUSTER: u32 = 10;
const FLOWS_PER_CLUSTER: u32 = 5;

/// The E15 clustered shape: disjoint five-flow interference islands, so
/// a what-if's dirty closure stays one cluster wide at any standing
/// size — the workload warm serving exists for.
fn clustered_instance(flows: u32) -> FlowSet {
    let clusters = flows / FLOWS_PER_CLUSTER;
    let network =
        Network::uniform(clusters * NODES_PER_CLUSTER, 1, 1).expect("valid uniform network");
    let mut out = Vec::new();
    let mut id = 0u32;
    for k in 0..clusters {
        let b = k * NODES_PER_CLUSTER;
        for s in 1..=FLOWS_PER_CLUSTER {
            id += 1;
            out.push(
                SporadicFlow::uniform(
                    id,
                    Path::from_ids(b + s..=b + s + 4).expect("valid cluster path"),
                    200,
                    3,
                    0,
                    i64::MAX / 4,
                )
                .expect("valid cluster flow"),
            );
        }
    }
    FlowSet::new(network, out).expect("valid clustered instance")
}

/// What-if candidate `i`: a short flow at the head of cluster
/// `i % clusters`, unique id, never committed.
fn candidate(flows: u32, i: u64) -> SporadicFlow {
    let clusters = (flows / FLOWS_PER_CLUSTER) as u64;
    let b = ((i % clusters) as u32) * NODES_PER_CLUSTER;
    SporadicFlow::uniform(
        100_000 + (i as u32 % 50_000),
        Path::from_ids([b + 1, b + 2]).expect("valid candidate path"),
        400,
        2,
        0,
        i64::MAX / 4,
    )
    .expect("valid candidate")
}

/// One line-protocol connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn call(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send");
        self.recv_line()
    }

    /// Writes pre-framed request lines without awaiting responses —
    /// the pipelined half of the admit-throughput phase.
    fn send_raw(&mut self, lines: &str) {
        self.stream.write_all(lines.as_bytes()).expect("send");
    }

    fn recv_line(&mut self) -> String {
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("recv");
        out.trim_end().to_string()
    }
}

/// Extracts the `result` payload of an ok response.
fn result_of(line: &str) -> Value {
    let v: Value = serde_json::from_str(line).expect("response parses");
    let entries = v.as_map().expect("response is an object");
    assert!(
        matches!(field(entries, "ok"), Some(Value::Bool(true))),
        "request failed: {line}"
    );
    field(entries, "result")
        .cloned()
        .expect("ok without result")
}

fn whatif_line(flow: &SporadicFlow) -> String {
    format!(
        "{{\"op\":\"whatif\",\"flow\":{}}}",
        serde_json::to_string(flow).expect("flow serialises")
    )
}

/// Streams `per_worker` what-ifs from each of `workers` connections,
/// returning every client-observed latency in milliseconds.
fn whatif_storm(
    addr: std::net::SocketAddr,
    flows: u32,
    workers: usize,
    per_worker: u64,
) -> Vec<f64> {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers as u64 {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr);
                let mut lat = Vec::with_capacity(per_worker as usize);
                for i in 0..per_worker {
                    let line = whatif_line(&candidate(flows, w * per_worker + i));
                    let t = Instant::now();
                    let resp = client.call(&line);
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                    debug_assert!(resp.contains("\"ok\""), "{resp}");
                }
                lat
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect()
    })
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v
}

/// Sustained mutation throughput against the single writer, with the
/// burst-drain amortisation counters the daemon reports.
#[derive(Serialize)]
struct AdmitEntry {
    workers: usize,
    pipeline_depth: usize,
    /// Admit + release ops acknowledged over the wire.
    ops: u64,
    admitted: u64,
    ops_per_sec: f64,
    /// Daemon-lifetime mutation count at the end of the run.
    write_ops: i128,
    /// View publications the writer performed for those ops.
    write_batches: i128,
    /// `write_ops / write_batches` — ops sharing one view swap.
    batch_amortisation: f64,
}

#[derive(Serialize)]
struct Entry {
    flows: u32,
    decisions: u64,
    identity_checked: u64,
    identity_ok: bool,
    /// Quiesced wire latency (the gated measurement).
    wire_p50_ms: f64,
    wire_p99_ms: f64,
    /// Wire latency with admit/release churn committing underneath
    /// (reported, not gated: includes CPU queueing on small boxes).
    churned_p99_ms: f64,
    inproc_p99_ms: f64,
    p99_ratio: f64,
    decisions_per_sec: f64,
    churn_cycles: u64,
    admit: AdmitEntry,
    protocol_errors: i128,
    overloaded: i128,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    smoke: bool,
    latency_workers: usize,
    max_p99_ratio: f64,
    total_decisions: u64,
    entries: Vec<Entry>,
}

/// Phase 5: every worker connection pipelines [`ADMIT_PIPELINE`]-deep
/// windows of admits, reads the decisions back, then releases whatever
/// was admitted (pipelined too) — cycling so the standing set returns
/// to its initial size. Returns `(acknowledged ops, admitted, wall)`.
fn admit_storm(
    addr: std::net::SocketAddr,
    flows: u32,
    workers: usize,
    cycles_per_worker: u64,
) -> (u64, u64, f64) {
    let t0 = Instant::now();
    let (ops, admitted) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers as u64 {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr);
                let (mut ops, mut admitted) = (0u64, 0u64);
                let mut cycle = 0u64;
                while cycle < cycles_per_worker {
                    let window = (ADMIT_PIPELINE as u64).min(cycles_per_worker - cycle);
                    let mut ids = Vec::with_capacity(window as usize);
                    let mut lines = String::new();
                    for k in 0..window {
                        let mut f = candidate(flows, cycle + k);
                        // Disjoint per-worker id ranges, clear of the
                        // standing set, the identity candidates and the
                        // churn phase.
                        f.id = FlowId(300_000 + w as u32 * 10_000 + ((cycle + k) as u32 % 10_000));
                        ids.push(f.id.0);
                        lines.push_str(&format!(
                            "{{\"op\":\"admit\",\"flow\":{}}}\n",
                            serde_json::to_string(&f).expect("flow serialises")
                        ));
                    }
                    client.send_raw(&lines);
                    let mut to_release = Vec::new();
                    for id in &ids {
                        let resp = client.recv_line();
                        ops += 1;
                        if resp.contains("\"decision\":\"admitted\"") {
                            admitted += 1;
                            to_release.push(*id);
                        }
                    }
                    if !to_release.is_empty() {
                        let mut lines = String::new();
                        for id in &to_release {
                            lines.push_str(&format!("{{\"op\":\"release\",\"flow_id\":{id}}}\n"));
                        }
                        client.send_raw(&lines);
                        for _ in &to_release {
                            let _ = client.recv_line();
                            ops += 1;
                        }
                    }
                    cycle += window;
                }
                (ops, admitted)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    });
    (ops, admitted, t0.elapsed().as_secs_f64())
}

fn run_entry(
    flows: u32,
    workers: usize,
    per_worker: u64,
    churn_target: u64,
    admit_cycles: u64,
) -> Entry {
    let set = clustered_instance(flows);
    let cfg = AnalysisConfig::default();
    let standing = ConvergedState::build_ef(&set, &cfg).expect("standing set converges");

    let ac = AdmissionController::new(set, cfg.clone());
    let engine = Arc::new(Engine::start(Some(ac), EngineConfig::default()));
    let server = TcpServer::bind(engine.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // Phase 1: identity — concurrent wire answers vs sequential
    // library answers on the quiesced standing set.
    let identity_checked: u64 = 64 * IDENTITY_WORKERS as u64;
    let mismatches: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..IDENTITY_WORKERS as u64 {
            let standing = &standing;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr);
                let mut bad = 0u64;
                for i in (w * 64)..((w + 1) * 64) {
                    let cand = candidate(flows, i);
                    let expected = evaluate_whatif(standing, cand.clone());
                    let got = decision_from_value(&result_of(&client.call(&whatif_line(&cand))))
                        .expect("decision parses");
                    if got != expected {
                        eprintln!("identity mismatch for candidate {i}: {got:?} != {expected:?}");
                        bad += 1;
                    }
                }
                bad
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });

    // Phase 2: churned load — what-if workers with admit/release
    // cycles committing underneath them.
    let stop = AtomicBool::new(false);
    let churn_cycles = AtomicU64::new(0);
    let t0 = Instant::now();
    let churned: Vec<f64> = std::thread::scope(|scope| {
        let churn = scope.spawn(|| {
            let mut client = Client::connect(addr);
            while !stop.load(Ordering::Relaxed) {
                let cycle = churn_cycles.load(Ordering::Relaxed);
                if cycle >= churn_target {
                    break;
                }
                let mut f = candidate(flows, cycle);
                f.id = FlowId(200_000 + (cycle as u32 % 10_000));
                let admit = client.call(&format!(
                    "{{\"op\":\"admit\",\"flow\":{}}}",
                    serde_json::to_string(&f).expect("flow serialises")
                ));
                if admit.contains("\"decision\":\"admitted\"") {
                    client.call(&format!("{{\"op\":\"release\",\"flow_id\":{}}}", f.id.0));
                }
                churn_cycles.fetch_add(1, Ordering::Relaxed);
            }
        });
        let lat = whatif_storm(addr, flows, workers, per_worker);
        stop.store(true, Ordering::Relaxed);
        churn.join().expect("churn");
        lat
    });

    // Phase 3: quiesced load — the latency-gated measurement.
    let quiesced = sorted(whatif_storm(addr, flows, workers, per_worker));
    let wall = t0.elapsed().as_secs_f64();
    let decisions = 2 * per_worker * workers as u64;

    // Phase 4: the in-process baseline, same thread count.
    let inproc: Vec<f64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers as u64 {
            let standing = &standing;
            handles.push(scope.spawn(move || {
                (0..per_worker.min(2_000))
                    .map(|i| {
                        let cand = candidate(flows, w * per_worker + i);
                        let t = Instant::now();
                        let _ = evaluate_whatif(standing, cand);
                        t.elapsed().as_secs_f64() * 1e3
                    })
                    .collect::<Vec<f64>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect()
    });
    let inproc = sorted(inproc);

    // Phase 5: sustained admit/release throughput at the writer.
    let (admit_ops, admitted, admit_wall) = admit_storm(addr, flows, workers, admit_cycles);

    // Daemon-side health counters, then shut the daemon down.
    let mut client = Client::connect(addr);
    let metrics = result_of(&client.call("{\"op\":\"metrics\"}"));
    let entries = metrics.as_map().expect("metrics object");
    let counter = |name| field(entries, name).and_then(Value::as_int).unwrap_or(-1);
    let protocol_errors = counter("protocol_errors");
    let overloaded = counter("overloaded");
    let write_ops = counter("write_ops");
    let write_batches = counter("write_batches");
    client.call("{\"op\":\"shutdown\"}");
    server.wait();

    let wire_p99 = percentile(&quiesced, 0.99);
    let inproc_p99 = percentile(&inproc, 0.99);
    Entry {
        flows,
        decisions,
        identity_checked,
        identity_ok: mismatches == 0,
        wire_p50_ms: percentile(&quiesced, 0.50),
        wire_p99_ms: wire_p99,
        churned_p99_ms: percentile(&sorted(churned), 0.99),
        inproc_p99_ms: inproc_p99,
        p99_ratio: wire_p99 / inproc_p99.max(1e-9),
        decisions_per_sec: decisions as f64 / wall.max(1e-9),
        churn_cycles: churn_cycles.load(Ordering::Relaxed),
        admit: AdmitEntry {
            workers,
            pipeline_depth: ADMIT_PIPELINE,
            ops: admit_ops,
            admitted,
            ops_per_sec: admit_ops as f64 / admit_wall.max(1e-9),
            write_ops,
            write_batches,
            batch_amortisation: write_ops as f64 / (write_batches.max(1)) as f64,
        },
        protocol_errors,
        overloaded,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    // Full preset: 2 sizes x 2 load phases x workers x per_worker,
    // sized so the total clears 100k wire decisions at any worker
    // count.
    let per_worker: u64 = if smoke {
        400
    } else {
        25_000 / workers as u64 + 1
    };
    let churn_target: u64 = if smoke { 50 } else { 500 };
    let admit_cycles: u64 = if smoke { 40 } else { 400 };

    let entries: Vec<Entry> = FLOW_COUNTS
        .iter()
        .map(|&flows| run_entry(flows, workers, per_worker, churn_target, admit_cycles))
        .collect();
    let total: u64 = entries.iter().map(|e| e.decisions).sum();

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.flows.to_string(),
                e.decisions.to_string(),
                format!("{:.3}", e.wire_p50_ms),
                format!("{:.3}", e.wire_p99_ms),
                format!("{:.3}", e.churned_p99_ms),
                format!("{:.3}", e.inproc_p99_ms),
                format!("{:.2}x", e.p99_ratio),
                format!("{:.0}", e.decisions_per_sec),
                e.churn_cycles.to_string(),
                format!("{:.0}", e.admit.ops_per_sec),
                format!("{:.2}", e.admit.batch_amortisation),
                if e.identity_ok { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "E18 - daemon serving under sustained load ({workers} workers{})",
                if smoke { ", smoke" } else { "" }
            ),
            &[
                "flows",
                "decisions",
                "wire p50",
                "wire p99",
                "churned p99",
                "inproc p99",
                "ratio",
                "dec/s",
                "churn",
                "admit/s",
                "batch",
                "identity",
            ],
            &rows,
        )
    );

    let out = Output {
        experiment: "serve_perf".to_string(),
        smoke,
        latency_workers: workers,
        max_p99_ratio: MAX_P99_RATIO,
        total_decisions: total,
        entries,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialisable");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({total} wire decisions)");

    for e in &out.entries {
        assert!(
            e.identity_ok,
            "daemon what-ifs diverged from the in-process library at {} flows",
            e.flows
        );
        assert_eq!(
            e.protocol_errors, 0,
            "daemon reported protocol errors at {} flows",
            e.flows
        );
        assert!(
            e.p99_ratio <= MAX_P99_RATIO,
            "quiesced wire p99 {:.3}ms exceeds {MAX_P99_RATIO}x the in-process p99 {:.3}ms at {} flows",
            e.wire_p99_ms,
            e.inproc_p99_ms,
            e.flows
        );
        assert!(
            e.churn_cycles >= 1,
            "churn never committed at {} flows",
            e.flows
        );
        assert!(
            e.admit.admitted >= 1 && e.admit.ops_per_sec > 0.0,
            "admit storm never committed at {} flows",
            e.flows
        );
        assert!(
            e.admit.write_batches >= 1 && e.admit.write_batches <= e.admit.write_ops,
            "burst counters inconsistent at {} flows: {} batches for {} ops",
            e.flows,
            e.admit.write_batches,
            e.admit.write_ops
        );
    }
    if !smoke {
        assert!(
            total >= 100_000,
            "full preset must drive 100k+ wire decisions, got {total}"
        );
    }
    println!("all serve gates passed");
}
