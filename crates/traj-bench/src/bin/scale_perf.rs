//! E16 — scale: component-sharded fixed point vs the monolithic loop and
//! the unsharded reference engine on 500–5000-flow topologies.
//!
//! Pod-local fat-tree instances ([`fat_tree`], `locality = 1.0`)
//! decompose into one crossing component per occupied pod; the sharded
//! engine solves each component's `Smax` fixed point independently in a
//! struct-of-arrays arena and stops each shard at its own convergence.
//! Every instance is analysed three ways:
//!
//! * **sharded** — `analyze_all` under the default
//!   [`ShardMode::Components`];
//! * **monolithic** — the same cached engine with sharding disabled
//!   ([`ShardMode::Monolithic`]); its per-flow verdicts are the
//!   **bit-identity** oracle for every entry;
//! * **reference** — [`analyze_all_reference`], the retained unsharded
//!   pre-cache engine that re-solves every `Smax` row against the full
//!   flow set. This is the speedup baseline the scale gate measures
//!   against; it is only affordable up to [`REFERENCE_MAX_FLOWS`]
//!   flows. Larger entries say so explicitly: `reference_skipped:
//!   true`, a `null` timing, and a log line naming the cutoff.
//!
//! A [`backbone_mesh`] instance (one dense component) rides along as
//! an identity control: it exercises the single-shard arena path —
//! the component solver, not a delegation back to the monolithic
//! loop — against the monolithic oracle, and the intra-component
//! gate: sharded cold analysis must not run slower than monolithic
//! on any entry (`speedup_vs_monolithic >= 1.0`, asserted here and
//! re-checked by CI against the committed JSON). A warm leg at 1000
//! standing flows
//! times [`ConvergedState::extend`] against a cold `analyze_ef` of the
//! extended set: with component sharding, only the candidate's pod is
//! re-solved.
//!
//! Measurements and gate inputs go to `BENCH_scale.json`:
//! * `identical: true` on every entry (hard assert),
//! * `speedup_vs_monolithic ≥ 1.0` on every entry (sharding must
//!   never cost wall-clock, including the one-component backbone),
//! * `speedup_vs_reference ≥ 3` wherever the reference ran (500+ flows),
//! * sharded cold analysis of 5000 flows within 10 s,
//! * `speedup_warm ≥ 5` at 1000 standing flows.
//!
//! Run: `cargo run --release -p traj-bench --bin scale_perf`

use std::time::Instant;

use serde::Serialize;
use traj_analysis::{
    analyze_all, analyze_all_reference, analyze_ef, AnalysisConfig, ConvergedState, ShardMode,
};
use traj_bench::render_table;
use traj_model::gen::{backbone_mesh, fat_tree, BackboneParams, FatTreeParams};
use traj_model::{FlowSet, SporadicFlow};

const FLOW_COUNTS: [u32; 4] = [500, 1000, 2000, 5000];
/// Pods scale with the flow count so per-pod (per-component) size stays
/// modest — the regime the shard solver is built for.
const FLOWS_PER_POD: u32 = 25;
/// Largest instance the quadratic reference engine is timed on.
const REFERENCE_MAX_FLOWS: u32 = 1000;
/// Standing-set size of the warm-admission leg.
const WARM_FLOWS: u32 = 1000;

fn fat_tree_instance(flows: u32) -> FlowSet {
    let p = FatTreeParams {
        pods: (flows / FLOWS_PER_POD).max(2),
        flows,
        locality: 1.0,
        ..Default::default()
    };
    fat_tree(0xF1F0 + u64::from(flows), &p).expect("valid fat-tree instance")
}

#[derive(Serialize)]
struct Entry {
    topology: String,
    flows: usize,
    /// Crossing-graph components the partition found.
    components: usize,
    largest_component: usize,
    cold_ms_sharded: f64,
    cold_ms_monolithic: f64,
    /// Unsharded reference engine; `None` above [`REFERENCE_MAX_FLOWS`].
    cold_ms_reference: Option<f64>,
    /// `true` when the reference engine was deliberately not run on
    /// this entry (above the size cutoff, or the backbone identity
    /// control) — the `null` timing is a decision, not a gap.
    reference_skipped: bool,
    /// Monolithic cached cold wall over sharded cold wall.
    speedup_vs_monolithic: f64,
    /// Reference cold wall over sharded cold wall — the scale gate.
    speedup_vs_reference: Option<f64>,
    /// Sharded, monolithic (and reference, where run) per-flow verdicts
    /// agreed bit-for-bit.
    identical: bool,
}

#[derive(Serialize)]
struct WarmEntry {
    flows: usize,
    warm_ms: f64,
    cold_ms: f64,
    /// Cold extended analysis over the warm what-if, same decision.
    speedup_warm: f64,
    identical: bool,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    reps: usize,
    /// Size cutoff above which the reference engine is skipped
    /// (entries beyond it carry `reference_skipped: true`).
    reference_max_flows: u32,
    entries: Vec<Entry>,
    warm: WarmEntry,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn measure(topology: &str, set: &FlowSet, reps: usize, with_reference: bool) -> Entry {
    let sharded_cfg = AnalysisConfig::default();
    let mono_cfg = AnalysisConfig {
        shard_mode: ShardMode::Monolithic,
        ..AnalysisConfig::default()
    };
    // Untimed warm-up: the crossing-segment memo on the set is built by
    // whichever engine runs first and reused by the second, so at low
    // rep counts the first timed engine would otherwise carry the whole
    // memo construction and the comparison would measure run order, not
    // engines.
    let _ = analyze_all(set, &sharded_cfg);
    let (ms_sharded, sharded) = time_best(reps, || analyze_all(set, &sharded_cfg));
    let (ms_mono, mono) = time_best(reps, || analyze_all(set, &mono_cfg));
    let agrees = |b: &traj_analysis::SetReport| {
        sharded.per_flow().len() == b.per_flow().len()
            && sharded
                .per_flow()
                .iter()
                .zip(b.per_flow())
                .all(|(a, b)| a.wcrt == b.wcrt && a.jitter == b.jitter)
    };
    let mut identical = agrees(&mono);
    let ms_reference = if with_reference {
        let (ms_ref, reference) = time_best(1, || analyze_all_reference(set, &sharded_cfg));
        identical &= sharded.bounds() == reference.bounds();
        Some(ms_ref)
    } else {
        println!(
            "{topology} at {} flows: reference engine skipped \
             (quadratic baseline is only timed up to {REFERENCE_MAX_FLOWS} flows)",
            set.len()
        );
        None
    };
    let t = sharded
        .telemetry()
        .expect("cached engine records telemetry");
    Entry {
        topology: topology.to_string(),
        flows: set.len(),
        components: t.components,
        largest_component: t.largest_component,
        cold_ms_sharded: ms_sharded,
        cold_ms_monolithic: ms_mono,
        cold_ms_reference: ms_reference,
        reference_skipped: !with_reference,
        speedup_vs_monolithic: ms_mono / ms_sharded.max(1e-9),
        speedup_vs_reference: ms_reference.map(|r| r / ms_sharded.max(1e-9)),
        identical,
    }
}

fn warm_admission() -> WarmEntry {
    let cfg = AnalysisConfig::default();
    let set = fat_tree_instance(WARM_FLOWS);
    let standing = ConvergedState::build_ef(&set, &cfg).expect("standing set converges");
    // One pod-local candidate: clone the first flow's route under a fresh
    // id. Its dirty closure is its own pod; every other component's rows
    // are reused as-is by the warm path.
    let proto = &set.flows()[0];
    let cand = SporadicFlow::uniform(
        90_000,
        proto.path.clone(),
        2 * proto.period,
        proto.costs()[0],
        0,
        i64::MAX / 4,
    )
    .expect("valid candidate");
    let extended = set
        .extended_with(cand.clone())
        .expect("candidate extends the standing set");
    let (cold_ms, cold) = time_best(3, || analyze_ef(&extended, &cfg));
    let (warm_ms, warm) = time_best(3, || {
        standing
            .extend(cand.clone())
            .expect("candidate extends the standing state")
    });
    let identical = cold.per_flow().len() == warm.report.per_flow().len()
        && cold
            .per_flow()
            .iter()
            .zip(warm.report.per_flow())
            .all(|(a, b)| a.wcrt == b.wcrt && a.jitter == b.jitter);
    WarmEntry {
        flows: set.len(),
        warm_ms,
        cold_ms,
        speedup_warm: cold_ms / warm_ms.max(1e-9),
        identical,
    }
}

fn main() {
    let mut entries = Vec::new();
    for &flows in &FLOW_COUNTS {
        let set = fat_tree_instance(flows);
        let reps = if flows >= 2000 { 1 } else { 3 };
        entries.push(measure(
            "fat-tree",
            &set,
            reps,
            flows <= REFERENCE_MAX_FLOWS,
        ));
    }
    // Identity control: dense backbone, typically one giant component —
    // the sharded engine must fall back to the monolithic loop unchanged.
    let bb = backbone_mesh(
        17,
        &BackboneParams {
            flows: 192,
            core: 24,
            chords: 8,
            // Denser instances overload the shared ring (busy-period
            // guard verdicts); this stays schedulable yet one-component.
            max_utilisation: 0.6,
            ..Default::default()
        },
    )
    .expect("valid backbone instance");
    entries.push(measure("backbone", &bb, 3, false));

    let warm = warm_admission();

    let fmt_opt = |v: Option<f64>, suffix: &str| {
        v.map(|x| format!("{x:.1}{suffix}"))
            .unwrap_or_else(|| "-".to_string())
    };
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.topology.clone(),
                e.flows.to_string(),
                e.components.to_string(),
                e.largest_component.to_string(),
                format!("{:.1}", e.cold_ms_sharded),
                format!("{:.1}", e.cold_ms_monolithic),
                format!("{:.2}x", e.speedup_vs_monolithic),
                fmt_opt(e.cold_ms_reference, ""),
                fmt_opt(e.speedup_vs_reference, "x"),
                if e.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E16 - sharded vs monolithic vs unsharded-reference cold analysis",
            &[
                "topology",
                "flows",
                "comps",
                "largest",
                "sharded ms",
                "mono ms",
                "vs mono",
                "ref ms",
                "vs ref",
                "match",
            ],
            &rows,
        )
    );
    println!(
        "warm admission at {} standing flows: {:.2} ms warm vs {:.1} ms cold ({:.1}x, match: {})",
        warm.flows,
        warm.warm_ms,
        warm.cold_ms,
        warm.speedup_warm,
        if warm.identical { "yes" } else { "NO" },
    );

    let out = Output {
        experiment: "scale_perf".to_string(),
        reps: 3,
        reference_max_flows: REFERENCE_MAX_FLOWS,
        entries,
        warm,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialisable");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");

    assert!(
        out.entries.iter().all(|e| e.identical) && out.warm.identical,
        "sharded, monolithic and reference verdicts diverged"
    );
    for e in &out.entries {
        if e.topology == "fat-tree" {
            assert!(
                e.components >= 2,
                "fat-tree instance at {} flows did not decompose",
                e.flows
            );
        }
        assert!(
            e.speedup_vs_monolithic >= 1.0,
            "sharding must not cost wall-clock: {} at {} flows ran {:.1} ms sharded vs {:.1} ms monolithic",
            e.topology,
            e.flows,
            e.cold_ms_sharded,
            e.cold_ms_monolithic
        );
        assert!(
            e.reference_skipped == e.cold_ms_reference.is_none(),
            "reference_skipped must explain exactly the null timings"
        );
        if let Some(speedup) = e.speedup_vs_reference {
            assert!(
                speedup >= 3.0,
                "sharded cold analysis must reach 3x over the unsharded engine at {} flows, got {:.1}x",
                e.flows,
                speedup
            );
        }
    }
    assert!(
        out.entries
            .iter()
            .any(|e| e.flows >= 500 && e.speedup_vs_reference.is_some()),
        "the 3x gate must cover at least one 500+-flow entry"
    );
    let biggest = out
        .entries
        .iter()
        .filter(|e| e.topology == "fat-tree")
        .max_by_key(|e| e.flows)
        .expect("fat-tree entries exist");
    assert!(
        biggest.flows >= 5000,
        "scale sweep must reach 5000 flows, stopped at {}",
        biggest.flows
    );
    assert!(
        biggest.cold_ms_sharded <= 10_000.0,
        "cold sharded analysis of {} flows must finish within 10 s, took {:.1} ms",
        biggest.flows,
        biggest.cold_ms_sharded
    );
    assert!(
        out.warm.speedup_warm >= 5.0,
        "warm admission at {} standing flows must keep 5x over cold, got {:.1}x",
        out.warm.flows,
        out.warm.speedup_warm
    );
    println!(
        "gates passed: {} flows cold in {:.1} ms, best speedup vs reference {:.1}x, warm {:.1}x",
        biggest.flows,
        biggest.cold_ms_sharded,
        out.entries
            .iter()
            .filter_map(|e| e.speedup_vs_reference)
            .fold(0.0, f64::max),
        out.warm.speedup_warm
    );
}
