//! E15 — Admission throughput: cold vs warm-start vs batched what-ifs.
//!
//! On clustered instances of 10–200 standing flows (independent
//! interference islands of five flows each — the realistic shape for
//! incrementality), evaluates EF admission candidates three ways:
//!
//! * **cold** — `analyze_ef` on the extended set, what the seed
//!   controller ran for every `try_admit`;
//! * **warm** — [`ConvergedState::extend`]: the standing converged
//!   solution is extended, only the candidate's dirty closure is
//!   re-solved;
//! * **batched** — [`AdmissionController::try_admit_batch`] on a
//!   prewarmed controller: all candidates fan out in parallel, winners
//!   commit sequentially.
//!
//! Each candidate's warm report is checked bit-identical to the cold
//! one, and the measurements (admissions/sec, p99 decision latency,
//! mean dirty-closure size) go to `BENCH_admission.json`.
//!
//! Run: `cargo run --release -p traj-bench --bin admission_perf`

use std::time::Instant;

use serde::Serialize;
use traj_analysis::{analyze_ef, AnalysisConfig, ConvergedState};
use traj_bench::render_table;
use traj_diffserv::{AdmissionController, AdmissionDecision};
use traj_model::{FlowSet, Network, Path, SporadicFlow};

const NODES_PER_CLUSTER: u32 = 10;
const FLOWS_PER_CLUSTER: u32 = 5;
const FLOW_COUNTS: [u32; 6] = [10, 20, 40, 80, 120, 200];
const REPS: usize = 5;
/// Candidates per standing size (capped by the cluster count).
const BATCH: usize = 8;

/// Disjoint clusters of five chained flows each on a shared uniform
/// network — flow `k` runs `[b+k .. b+k+4]`, so neighbours overlap
/// heavily and every pair shares the cluster's middle node. Admission
/// candidates land at a cluster's head: they directly cross two flows,
/// while the transitive dirty closure spans the whole cluster — the
/// two-grade invalidation the warm path exploits.
fn clustered_instance(flows: u32) -> FlowSet {
    let clusters = flows / FLOWS_PER_CLUSTER;
    let network =
        Network::uniform(clusters * NODES_PER_CLUSTER, 1, 1).expect("valid uniform network");
    let mut out = Vec::new();
    let mut id = 0u32;
    for k in 0..clusters {
        let b = k * NODES_PER_CLUSTER;
        let paths: Vec<Vec<u32>> = (1..=FLOWS_PER_CLUSTER)
            .map(|s| (b + s..=b + s + 4).collect())
            .collect();
        for nodes in paths {
            id += 1;
            out.push(
                SporadicFlow::uniform(
                    id,
                    Path::from_ids(nodes).expect("valid cluster path"),
                    200,
                    3,
                    0,
                    i64::MAX / 4,
                )
                .expect("valid cluster flow"),
            );
        }
    }
    FlowSet::new(network, out).expect("valid clustered instance")
}

/// One EF candidate per cluster, cycling: a short flow at the cluster
/// head, crossing that cluster's first two flows directly (and the
/// rest only transitively) and nothing outside the cluster.
fn candidates(flows: u32, count: usize) -> Vec<SporadicFlow> {
    let clusters = flows / FLOWS_PER_CLUSTER;
    (0..count)
        .map(|i| {
            let b = (i as u32 % clusters) * NODES_PER_CLUSTER;
            SporadicFlow::uniform(
                10_000 + i as u32,
                Path::from_ids([b + 1, b + 2]).expect("valid candidate path"),
                400,
                2,
                0,
                i64::MAX / 4,
            )
            .expect("valid candidate")
        })
        .collect()
}

#[derive(Serialize)]
struct Entry {
    flows: u32,
    batch: usize,
    /// Mean dirty-closure size across candidates (warm path).
    closure_mean: f64,
    p99_ms_cold: f64,
    p99_ms_warm: f64,
    adm_per_sec_cold: f64,
    adm_per_sec_warm: f64,
    adm_per_sec_batch: f64,
    /// Total cold wall over total warm wall for the same decisions.
    speedup_warm: f64,
    /// Total cold wall over the batched wall (fan-out + commits).
    speedup_batch: f64,
    /// All candidates admitted by the batched controller path.
    batch_admitted: bool,
    /// Warm and cold per-flow verdicts agreed bit-for-bit.
    identical: bool,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    reps: usize,
    entries: Vec<Entry>,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, Option<R>) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last)
}

fn p99(samples: &[f64]) -> f64 {
    traj_bench::percentile(samples, 0.99)
}

fn main() {
    let cfg = AnalysisConfig::default();
    let mut entries = Vec::new();

    for &flows in &FLOW_COUNTS {
        let set = clustered_instance(flows);
        let clusters = (flows / FLOWS_PER_CLUSTER) as usize;
        let cands = candidates(flows, BATCH.min(clusters));
        let k = cands.len();

        let Ok(standing) = ConvergedState::build_ef(&set, &cfg) else {
            eprintln!("standing instance at {flows} flows did not converge");
            continue;
        };

        // Per-decision latencies, candidate by candidate.
        let mut cold_ms = Vec::with_capacity(k);
        let mut warm_ms = Vec::with_capacity(k);
        let mut closures = Vec::with_capacity(k);
        let mut identical = true;
        for cand in &cands {
            let extended = set
                .extended_with(cand.clone())
                .expect("candidate extends the standing set");
            let (ms_cold, cold) = time_best(REPS, || analyze_ef(&extended, &cfg));
            let (ms_warm, warm) = time_best(REPS, || {
                standing
                    .extend(cand.clone())
                    .expect("candidate extends the standing state")
            });
            let (Some(cold), Some(warm)) = (cold, warm) else {
                continue;
            };
            identical &= cold
                .per_flow()
                .iter()
                .zip(warm.report.per_flow())
                .all(|(a, b)| a.wcrt == b.wcrt && a.jitter == b.jitter)
                && cold.per_flow().len() == warm.report.per_flow().len();
            closures.push(warm.recomputed() as f64);
            cold_ms.push(ms_cold);
            warm_ms.push(ms_warm);
        }
        let total_cold: f64 = cold_ms.iter().sum();
        let total_warm: f64 = warm_ms.iter().sum();

        // Batched controller path: prewarm the standing state through a
        // throwaway admit/release cycle, then time the batch on a fresh
        // clone per rep (winners commit, so each rep needs its own).
        let mut proto = AdmissionController::new(set.clone(), cfg.clone());
        let prewarm = candidates(flows, BATCH.min(clusters) + 1)
            .pop()
            .expect("prewarm candidate");
        let prewarm_id = prewarm.id;
        if matches!(proto.try_admit(prewarm), AdmissionDecision::Admitted { .. }) {
            proto.release(prewarm_id);
        }
        let (wall_ms_batch, batch_out) = time_best(REPS, || {
            let mut ac = proto.clone();
            ac.try_admit_batch(cands.clone())
        });
        let batch_admitted = batch_out
            .map(|ds| {
                ds.iter()
                    .all(|(_, d)| matches!(d, AdmissionDecision::Admitted { .. }))
            })
            .unwrap_or(false);

        entries.push(Entry {
            flows,
            batch: k,
            closure_mean: closures.iter().sum::<f64>() / (closures.len().max(1) as f64),
            p99_ms_cold: p99(&cold_ms),
            p99_ms_warm: p99(&warm_ms),
            adm_per_sec_cold: (k as f64) / (total_cold / 1e3).max(1e-9),
            adm_per_sec_warm: (k as f64) / (total_warm / 1e3).max(1e-9),
            adm_per_sec_batch: (k as f64) / (wall_ms_batch / 1e3).max(1e-9),
            speedup_warm: total_cold / total_warm.max(1e-9),
            speedup_batch: total_cold / wall_ms_batch.max(1e-9),
            batch_admitted,
            identical,
        });
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.flows.to_string(),
                format!("{:.1}", e.closure_mean),
                format!("{:.2}", e.p99_ms_cold),
                format!("{:.2}", e.p99_ms_warm),
                format!("{:.0}", e.adm_per_sec_cold),
                format!("{:.0}", e.adm_per_sec_warm),
                format!("{:.0}", e.adm_per_sec_batch),
                format!("{:.1}x", e.speedup_warm),
                if e.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("E15 - admission throughput (batch of {BATCH}, best of {REPS})"),
            &[
                "flows",
                "closure",
                "p99 cold",
                "p99 warm",
                "adm/s cold",
                "adm/s warm",
                "adm/s batch",
                "speedup",
                "match",
            ],
            &rows,
        )
    );

    let out = Output {
        experiment: "admission_perf".to_string(),
        reps: REPS,
        entries,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialisable");
    std::fs::write("BENCH_admission.json", &json).expect("write BENCH_admission.json");
    println!("wrote BENCH_admission.json");

    assert!(
        out.entries.iter().all(|e| e.identical),
        "warm and cold admission verdicts diverged"
    );
    assert!(
        out.entries.iter().all(|e| e.batch_admitted),
        "batched admission rejected a feasible candidate"
    );
    // Component sharding (DESIGN.md §11) cut the cold baseline itself
    // ~2x on these clustered instances, so the 5x ratio now needs a
    // larger standing set; scale_perf (E16) gates the same ratio at
    // 1000 standing flows.
    for e in &out.entries {
        if e.flows >= 200 {
            assert!(
                e.speedup_warm >= 5.0,
                "warm admission must reach 5x over cold at {} standing flows, got {:.1}x",
                e.flows,
                e.speedup_warm
            );
        }
    }
    let best = out
        .entries
        .iter()
        .map(|e| e.speedup_warm)
        .fold(0.0, f64::max);
    println!("best warm-vs-cold speedup: {best:.1}x (bit-identical bounds verified)");
}
