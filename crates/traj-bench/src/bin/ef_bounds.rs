//! E6 — Property 3 on the EF class: non-preemption penalty sweep.
//!
//! The paper's §6 applies the FIFO analysis to the DiffServ EF class with
//! the extra non-preemption term δᵢ (Lemma 4). This binary sweeps the
//! size of the largest lower-priority (best-effort) packet and reports,
//! per EF flow: δᵢ, the Property 3 bound, and the simulated worst case on
//! Figure 3 routers.
//!
//! Run: `cargo run --release -p traj-bench --bin ef_bounds`

use traj_analysis::{analyze_ef, nonpreemption_delta, AnalysisConfig};
use traj_bench::render_table;
use traj_diffserv::DiffServDomain;
use traj_model::examples::{paper_example, paper_example_with_best_effort};

fn main() {
    let cfg = AnalysisConfig::default();

    // Reference: pure EF (paper §4 analysis).
    let pure = traj_analysis::analyze_all(&paper_example(), &cfg);
    println!("pure FIFO bounds (no lower-priority traffic):");
    for r in pure.per_flow() {
        println!("  {}: R = {:?}", r.name, r.wcrt.value().unwrap());
    }
    println!();

    let mut rows = Vec::new();
    for be_cost in [1i64, 2, 4, 8, 16, 32, 64] {
        let set = paper_example_with_best_effort(be_cost).unwrap();
        let rep = analyze_ef(&set, &cfg);
        let dom = DiffServDomain::new(set.clone());
        let sim = dom.simulator(24);
        let out = sim.run_periodic(&vec![0; set.len()]);

        for (i, r) in rep.per_flow().iter().enumerate() {
            let flow = set.flow(r.flow).unwrap();
            let delta = nonpreemption_delta(&set, flow, &flow.path);
            let bound = r.wcrt.value().unwrap();
            let observed = out.flows[i].max_response;
            assert!(observed <= bound, "{}: {} > {}", r.name, observed, bound);
            rows.push(vec![
                be_cost.to_string(),
                r.name.clone(),
                delta.to_string(),
                bound.to_string(),
                observed.to_string(),
                if r.meets_deadline() == Some(true) {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "EF bounds vs best-effort packet size (Property 3 / Lemma 4)",
            &["C_be", "flow", "delta_i", "bound", "sim", "meets D"],
            &rows,
        )
    );
    println!("(sim = worst response over synchronous release on Figure 3 routers)");
}
