//! E7 — Trajectory vs holistic improvement across random topologies.
//!
//! The paper claims a > 25 % improvement on its example. This binary
//! measures the improvement distribution over randomised meshes and
//! parking-lot topologies (the canonical holistic worst case, where
//! jitter accumulates along a shared trunk).
//!
//! Run: `cargo run --release -p traj-bench --bin improvement`

use traj_analysis::{analyze_all, AnalysisConfig};
use traj_bench::render_table;
use traj_holistic::{analyze_holistic, HolisticConfig};
use traj_model::examples::paper_example;
use traj_model::gen::{parking_lot, random_mesh, MeshParams};

fn improvement(set: &traj_model::FlowSet) -> Option<f64> {
    let t = analyze_all(set, &AnalysisConfig::default());
    let h = analyze_holistic(set, &HolisticConfig::default());
    let ts: Option<i64> = t.bounds().into_iter().sum();
    let hs: Option<i64> = h.bounds().into_iter().sum();
    match (ts, hs) {
        (Some(ts), Some(hs)) if hs > 0 => Some(1.0 - ts as f64 / hs as f64),
        _ => None,
    }
}

fn main() {
    let mut rows = Vec::new();

    let paper = improvement(&paper_example()).unwrap();
    rows.push(vec![
        "paper example".into(),
        "-".into(),
        format!("{:.1}%", 100.0 * paper),
    ]);

    // Parking lots: deeper trunks => more holistic jitter accumulation.
    for trunk in [3u32, 5, 8, 12] {
        let set = parking_lot(7, 6, trunk, 120, 4).unwrap();
        if let Some(imp) = improvement(&set) {
            rows.push(vec![
                format!("parking lot, trunk {trunk}"),
                format!("{} flows", set.len()),
                format!("{:.1}%", 100.0 * imp),
            ]);
        }
    }

    // Random meshes at growing utilisation.
    for (label, max_u) in [("light", 0.3), ("medium", 0.5), ("heavy", 0.7)] {
        let mut imps = Vec::new();
        for seed in 0..20u64 {
            let set = random_mesh(
                seed,
                &MeshParams {
                    flows: 8,
                    nodes: 10,
                    max_utilisation: max_u,
                    ..Default::default()
                },
            )
            .unwrap();
            if let Some(imp) = improvement(&set) {
                imps.push(imp);
            }
        }
        if !imps.is_empty() {
            let mean = imps.iter().sum::<f64>() / imps.len() as f64;
            let max = imps.iter().cloned().fold(f64::MIN, f64::max);
            rows.push(vec![
                format!("random mesh ({label}, u<={max_u})"),
                format!("{} sets", imps.len()),
                format!("mean {:.1}%, max {:.1}%", 100.0 * mean, 100.0 * max),
            ]);
        }
    }

    println!(
        "{}",
        render_table(
            "Trajectory improvement over holistic (sum of WCRT bounds)",
            &["workload", "size", "improvement"],
            &rows,
        )
    );
    println!(
        "paper's claim on its example: > 25% - ours: {:.1}%",
        100.0 * paper
    );
}
