//! E11 — Ablation of the under-specified choices in Property 2.
//!
//! The paper leaves `Smax`, the `M` min-set and the treatment of
//! reverse-direction flows open (DESIGN.md §2). This binary compares all
//! combinations on the paper example and reports the pessimism spread, as
//! well as which combinations stay sound against the adversarial
//! simulation.
//!
//! Run: `cargo run --release -p traj-bench --bin ablation`

use traj_analysis::{analyze_all, AnalysisConfig, ReverseCounting, SmaxMode};
use traj_bench::{bounds_row, render_table};
use traj_model::examples::paper_example;
use traj_model::MinConvention;
use traj_sim::{adversarial_search, AdversaryParams};

fn main() {
    let set = paper_example();
    let adv = adversarial_search(
        &set,
        &AdversaryParams {
            trials: 300,
            ..Default::default()
        },
    );
    println!("adversarial lower bounds: {:?}\n", adv.observed);

    let mut rows = Vec::new();
    for smax in [SmaxMode::RecursivePrefix, SmaxMode::TransitOnly] {
        for minc in [
            MinConvention::Visiting,
            MinConvention::ZeroConvention,
            MinConvention::EdgeTraversing,
        ] {
            for rev in [ReverseCounting::PerFlow, ReverseCounting::PerCrossingNode] {
                let cfg = AnalysisConfig {
                    smax_mode: smax,
                    min_convention: minc,
                    reverse_counting: rev,
                    ..Default::default()
                };
                let rep = analyze_all(&set, &cfg);
                let sound = rep
                    .bounds()
                    .iter()
                    .zip(&adv.observed)
                    .all(|(b, &o)| b.map(|b| o <= b).unwrap_or(true));
                let mut row = vec![format!("{smax:?}"), format!("{minc:?}"), format!("{rev:?}")];
                row.extend(bounds_row(&rep));
                row.push(if sound { "ok".into() } else { "UNSOUND".into() });
                rows.push(row);
            }
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation: Property 2 interpretation knobs on the paper example",
            &["smax", "M-min", "reverse", "t1", "t2", "t3", "t4", "t5", "sound?"],
            &rows,
        )
    );
    println!(
        "published Table 2 row: {:?} (not reproducible from the literal formulas; \
         see EXPERIMENTS.md)",
        traj_model::examples::PAPER_TABLE2_TRAJECTORY
    );
}
