//! E14 — Observability overhead and telemetry export.
//!
//! Runs the E12 analysis workload three ways — observability disabled
//! (baseline), a [`NoopSink`] installed (pure emission-site cost), and a
//! [`JsonlSink`] capturing every event — and measures the instrumentation
//! overhead, asserting the no-op cost stays under 5% (plus a small
//! absolute slack so sub-millisecond runs cannot flake CI). Alongside the
//! timings it exercises the full telemetry surface: fixed-point
//! convergence telemetry, per-term bound provenance, and admission
//! metrics from a fault/retry workload — each round-tripped through serde
//! and embedded in `BENCH_obs.json`.
//!
//! Run: `cargo run --release -p traj-bench --bin metrics_export`

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::Serialize;
use traj_analysis::{
    analyze_all, provenance_flow, AnalysisConfig, BoundProvenance, FixpointTelemetry,
};
use traj_bench::render_table;
use traj_diffserv::{AdmissionController, AdmissionDecision, AdmissionMetrics, RetryPolicy};
use traj_model::examples::paper_example;
use traj_model::gen::{random_mesh, MeshParams};
use traj_model::{FaultScenario, FlowSet, NodeId, Path, SporadicFlow};
use traj_obs::{JsonlSink, NoopSink};

const NODES: u32 = 20;
/// One workload below the Auto threshold (Gauss–Seidel) and one above
/// (Jacobi), so both emission paths are covered.
const FLOW_COUNTS: [u32; 2] = [10, 20];
const SEED: u64 = 1;
const REPS: usize = 7;
/// CI gate: no-op instrumentation overhead must stay below this.
const OVERHEAD_LIMIT_PCT: f64 = 5.0;
/// Absolute slack (ms) so timer noise on millisecond-scale runs cannot
/// flake the relative gate.
const ABS_SLACK_MS: f64 = 0.5;

/// `Write` target shared with the installed [`JsonlSink`] so the captured
/// lines stay reachable after the sink is wrapped in an `Arc`.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take_lines(&self) -> Vec<String> {
        let mut buf = self.0.lock().expect("buffer lock");
        let text = String::from_utf8(std::mem::take(&mut *buf)).expect("JSONL is UTF-8");
        text.lines().map(str::to_string).collect()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[derive(Serialize)]
struct OverheadEntry {
    flows: u32,
    /// Strategy the default `Auto` config resolved to.
    chosen: String,
    /// Wall-clock per `analyze_all` call (best of `REPS`), observability
    /// disabled.
    baseline_ms: f64,
    /// Same workload with a `NoopSink` installed (emission sites active,
    /// events discarded).
    noop_ms: f64,
    /// Same workload streaming every event as JSONL.
    jsonl_ms: f64,
    /// `(noop - baseline) / baseline`, in percent (negative = noise).
    overhead_noop_pct: f64,
    overhead_jsonl_pct: f64,
    /// Events one run emits through the JSONL sink.
    events_per_run: usize,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    nodes: u32,
    seed: u64,
    reps: usize,
    overhead_limit_pct: f64,
    entries: Vec<OverheadEntry>,
    /// Convergence telemetry of the largest workload (serde round-trip
    /// checked before embedding).
    telemetry_sample: FixpointTelemetry,
    /// Bound provenance of one flow of the largest workload (round-trip
    /// checked).
    provenance_sample: BoundProvenance,
    /// Counters from the admission fault/retry workload.
    admission_metrics: AdmissionMetrics,
    /// Events the admission workload streamed as JSONL.
    admission_events: usize,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

/// Every captured line must be a standalone JSON object with an `event`
/// name — the contract the schema in DESIGN.md documents.
fn check_jsonl(lines: &[String]) {
    for line in lines {
        let v: serde::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("malformed JSONL line {line}: {e:?}"));
        let name = v
            .as_map()
            .and_then(|entries| serde::value::field(entries, "event"))
            .and_then(|n| n.as_str());
        assert!(
            name.is_some_and(|n| !n.is_empty()),
            "JSONL line lacks a string `event` field: {line}"
        );
    }
}

fn measure(set: &FlowSet) -> OverheadEntry {
    let cfg = AnalysisConfig::default();

    traj_obs::disable();
    let (baseline_ms, report) = time_best(REPS, || analyze_all(set, &cfg));
    let chosen = report
        .telemetry()
        .map(|t| t.chosen.name().to_string())
        .unwrap_or_else(|| "unknown".to_string());

    traj_obs::set_sink(Arc::new(NoopSink));
    let (noop_ms, _) = time_best(REPS, || analyze_all(set, &cfg));

    let buf = SharedBuf::default();
    traj_obs::set_sink(Arc::new(JsonlSink::new(buf.clone())));
    let (jsonl_ms, _) = time_best(REPS, || analyze_all(set, &cfg));
    traj_obs::disable();

    let lines = buf.take_lines();
    check_jsonl(&lines);
    assert!(
        lines.len() % REPS == 0 && !lines.is_empty(),
        "deterministic workload must emit the same events every rep"
    );

    OverheadEntry {
        flows: set.len() as u32,
        chosen,
        baseline_ms,
        noop_ms,
        jsonl_ms,
        overhead_noop_pct: (noop_ms - baseline_ms) / baseline_ms.max(1e-9) * 100.0,
        overhead_jsonl_pct: (jsonl_ms - baseline_ms) / baseline_ms.max(1e-9) * 100.0,
        events_per_run: lines.len() / REPS,
    }
}

/// Admission / survivability workload: fill the paper example to
/// rejection, kill a source node, retry past saturation — exercising
/// every counter in [`AdmissionMetrics`] while streaming events.
fn admission_workload() -> (AdmissionMetrics, usize) {
    let buf = SharedBuf::default();
    traj_obs::set_sink(Arc::new(JsonlSink::new(buf.clone())));

    let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default())
        .with_retry_policy(RetryPolicy { base: 8, cap: 32 });
    let mut id = 100;
    while let AdmissionDecision::Admitted { .. } = ac.try_admit(
        SporadicFlow::uniform(id, Path::from_ids([2, 3, 4]).expect("path"), 72, 4, 0, 60)
            .expect("candidate"),
    ) {
        id += 1;
    }
    // Node 9 is flow 2's source: the fault drops it into the retry queue.
    ac.on_fault(&FaultScenario::node_down(NodeId(9)), 0)
        .expect("fault response");
    for _ in 0..4 {
        let Some(e) = ac.retry_queue().first() else {
            break;
        };
        let due = e.next_attempt;
        ac.tick(due);
    }
    traj_obs::disable();

    let lines = buf.take_lines();
    check_jsonl(&lines);
    assert!(!lines.is_empty(), "admission workload must emit events");
    (*ac.metrics(), lines.len())
}

fn roundtrip<T: Serialize + serde::Deserialize + PartialEq + std::fmt::Debug>(
    what: &str,
    value: &T,
) {
    let json = serde_json::to_string(value).expect("serialisable");
    let back: T = serde_json::from_str(&json).expect("deserialisable");
    assert_eq!(&back, value, "{what} serde round-trip changed the value");
}

fn main() {
    traj_obs::reset_metrics();

    let mut entries = Vec::new();
    let mut largest: Option<FlowSet> = None;
    for &flows in &FLOW_COUNTS {
        let params = MeshParams {
            nodes: NODES,
            flows,
            path_len: (2, 4),
            max_utilisation: 0.5,
            ..Default::default()
        };
        let Ok(set) = random_mesh(SEED, &params) else {
            continue;
        };
        entries.push(measure(&set));
        largest = Some(set);
    }
    let largest = largest.expect("at least one workload built");

    let cfg = AnalysisConfig::default();
    let telemetry_sample = analyze_all(&largest, &cfg)
        .telemetry()
        .expect("convergent workload carries telemetry")
        .clone();
    roundtrip("FixpointTelemetry", &telemetry_sample);

    let first = largest.flows()[0].id;
    let provenance_sample = provenance_flow(&largest, &cfg, first).expect("convergent workload");
    roundtrip("BoundProvenance", &provenance_sample);
    assert_eq!(
        provenance_sample.total(),
        provenance_sample.bound,
        "provenance terms must sum to the bound"
    );

    let (admission_metrics, admission_events) = admission_workload();
    roundtrip("AdmissionMetrics", &admission_metrics);
    assert!(admission_metrics.admitted > 0 && admission_metrics.rejected > 0);
    assert!(admission_metrics.dropped > 0 && admission_metrics.retry_attempts > 0);

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.flows.to_string(),
                e.chosen.clone(),
                format!("{:.2}", e.baseline_ms),
                format!("{:.2}", e.noop_ms),
                format!("{:.2}", e.jsonl_ms),
                format!("{:+.1}%", e.overhead_noop_pct),
                format!("{:+.1}%", e.overhead_jsonl_pct),
                e.events_per_run.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("E14 - observability overhead ({NODES} nodes, best of {REPS})"),
            &[
                "flows",
                "strategy",
                "off ms",
                "noop ms",
                "jsonl ms",
                "noop ovh",
                "jsonl ovh",
                "events",
            ],
            &rows,
        )
    );

    let out = Output {
        experiment: "metrics_export".to_string(),
        nodes: NODES,
        seed: SEED,
        reps: REPS,
        overhead_limit_pct: OVERHEAD_LIMIT_PCT,
        entries,
        telemetry_sample,
        provenance_sample,
        admission_metrics,
        admission_events,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialisable");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    // The CI gate: best-of timing is robust to noise spikes, the absolute
    // slack covers timer granularity on the smallest workload.
    for e in &out.entries {
        assert!(
            e.noop_ms <= e.baseline_ms * (1.0 + OVERHEAD_LIMIT_PCT / 100.0) + ABS_SLACK_MS,
            "no-op sink overhead {:.1}% (baseline {:.2}ms, noop {:.2}ms) at {} flows \
             exceeds the {OVERHEAD_LIMIT_PCT}% budget",
            e.overhead_noop_pct,
            e.baseline_ms,
            e.noop_ms,
            e.flows
        );
    }
    println!("no-op overhead within {OVERHEAD_LIMIT_PCT}% on every workload");
}
