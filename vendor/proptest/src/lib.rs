//! Offline shim for `proptest`.
//!
//! Implements the subset the workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, integer-range strategies and `collection::vec`.
//! Cases are drawn from a deterministic SplitMix64 stream seeded from the
//! test name; there is no shrinking. Default case count is 64 (see
//! `vendor/README.md`).

// Vendored shim: exempt from the workspace lint gate.
#![allow(clippy::all)]

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one test case, used by the assertion macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; draw another.
    Reject,
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic case source + helpers used by the generated test bodies.
pub mod test_runner {
    /// SplitMix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// Builds a stream from a seed.
        pub fn new(seed: u64) -> Self {
            Gen { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a hash of a test name, used as its deterministic seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Value-producing strategies.
pub mod strategy {
    use super::test_runner::Gen;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;
        /// Draws one value.
        fn sample(&self, gen: &mut Gen) -> Self::Value;
    }

    macro_rules! int_strategy_impls {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, gen: &mut Gen) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = ((gen.next_u64() as u128) << 64 | gen.next_u64() as u128) % span;
                    self.start.wrapping_add(draw as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, gen: &mut Gen) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    if span == 0 {
                        return gen.next_u64() as $t;
                    }
                    let draw = ((gen.next_u64() as u128) << 64 | gen.next_u64() as u128) % span;
                    start.wrapping_add(draw as $t)
                }
            }
        )*};
    }

    int_strategy_impls!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::Gen;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a `Vec` strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, gen: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (gen.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }
}

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Declares property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __gen =
                $crate::test_runner::Gen::new($crate::test_runner::seed_of(stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(50).max(100);
            while __passed < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "too many rejected cases in {} ({} rejects for {} passes)",
                    stringify!($name),
                    __attempts - __passed,
                    __passed,
                );
                $(let $arg = ($strat).sample(&mut __gen);)*
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __passed += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property {} failed: {}\ninputs: {}",
                            stringify!($name),
                            __msg,
                            [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*]
                                .join(", "),
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a boolean property (shim of `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality (shim of `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!(
                    "assertion failed: ",
                    stringify!($left),
                    " == ",
                    stringify!($right),
                    " (left: {:?}, right: {:?})"
                ),
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality (shim of `proptest::prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!(
                    "assertion failed: ",
                    stringify!($left),
                    " != ",
                    stringify!($right),
                    " (both: {:?})"
                ),
                __l
            )));
        }
    }};
}

/// Rejects the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(a in -100i64..100, b in 1u32..=5) {
            prop_assert!((-100..100).contains(&a));
            prop_assert!((1..=5).contains(&b));
        }

        #[test]
        fn vec_sizes_hold(v in collection::vec(0u32..10, 2..8)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_cases_applies(x in 0i128..1000) {
            prop_assert!(x >= 0);
            prop_assert_ne!(x, -1);
        }
    }
}
