//! Offline shim for `serde_json`: JSON text <-> the shimmed `serde::Value`
//! data model. Supports everything the workspace round-trips: objects,
//! arrays, strings (with escapes), integers, floats, bools, null.

// Vendored shim: exempt from the workspace lint gate.
#![allow(clippy::all)]

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Error raised while parsing or converting JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Converts a `Value` into a typed value (mirrors `serde_json::from_value`).
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    Ok(T::from_value(&v)?)
}

/// Converts a typed value into a `Value` (mirrors `serde_json::to_value`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from ints (`1.0`).
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte '{}' at {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // BMP only; surrogate pairs are not produced by
                            // the printer above.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::Int(3)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::Float(1.5)]),
            ),
            ("s".to_string(), Value::Str("line\n\"quoted\"".to_string())),
        ]);
        let text = to_string(&Wrapper(v.clone())).unwrap();
        let back: Wrapper = from_str(&text).unwrap();
        assert_eq!(back.0, v);

        let pretty = to_string_pretty(&Wrapper(v.clone())).unwrap();
        let back: Wrapper = from_str(&pretty).unwrap();
        assert_eq!(back.0, v);
    }

    struct Wrapper(Value);

    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for Wrapper {
        fn from_value(v: &Value) -> std::result::Result<Self, serde::DeError> {
            Ok(Wrapper(v.clone()))
        }
    }

    #[test]
    fn integral_float_keeps_point() {
        let text = to_string(&Wrapper(Value::Float(2.0))).unwrap();
        assert_eq!(text, "2.0");
    }
}
