//! Offline shim for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`) derive macros for the shimmed `serde`
//! traits. Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields, newtype structs, tuple structs, unit
//!   structs;
//! * enums with unit, tuple and struct variants;
//! * the field attributes `#[serde(default)]` and `#[serde(skip)]`.
//!
//! Generic type parameters are intentionally unsupported (none of the
//! workspace's serialized types are generic).

// Vendored shim: exempt from the workspace lint gate.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shimmed `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

/// Derives the shimmed `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Consumes leading attributes, returning whether any `#[serde(...)]`
/// attribute among them contains `default` / `skip`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut default = false;
    let mut skip = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    for t in args.stream() {
                                        if let TokenTree::Ident(a) = t {
                                            match a.to_string().as_str() {
                                                "default" => default = true,
                                                "skip" => skip = true,
                                                _ => {}
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (i, default, skip)
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Consumes tokens of a type (or expression) until a top-level comma,
/// tracking angle-bracket depth so commas inside generics don't split.
fn skip_until_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, default, skip) = skip_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field {name}, got {other:?}"),
        }
        i = skip_until_comma(&toks, i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        let (ni, _, _) = skip_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        if i >= toks.len() {
            break;
        }
        count += 1;
        i = skip_until_comma(&toks, i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, _, _) = skip_attrs(&toks, i);
        i = ni;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                if n == 1 {
                    Shape::Newtype
                } else {
                    Shape::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        i = skip_until_comma(&toks, i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _, _) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    if n == 1 {
                        Shape::Newtype
                    } else {
                        Shape::Tuple(n)
                    }
                }
                _ => Shape::Unit,
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            let variants = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("expected enum body, got {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("cannot derive serde traits for `{other}`"),
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => named_to_value(fields, "self.", ""),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_to_value(fields, "", "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// `Value::Map` construction for named fields. `prefix` is `self.` for
/// structs and empty for enum-variant binders; binders are references so
/// `deref` adds nothing either way (`to_value` takes `&self`).
fn named_to_value(fields: &[Field], prefix: &str, _deref: &str) -> String {
    let mut pushes = String::new();
    for f in fields {
        if f.skip {
            continue;
        }
        let fname = &f.name;
        pushes.push_str(&format!(
            "__m.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&{prefix}{fname})));\n"
        ));
    }
    format!(
        "{{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Map(__m) }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Newtype => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                        .collect();
                    format!(
                        "{{ let __items = __v.as_seq().ok_or_else(|| \
                           ::serde::DeError::new(\"expected sequence for tuple struct {name}\"))?;\n\
                           if __items.len() != {n} {{ return Err(::serde::DeError::new(\
                           \"wrong tuple arity for {name}\")); }}\n\
                           Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => named_from_value(&format!("{name}"), fields, name),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Also accept the {"Variant": null} encoding.
                        data_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Newtype => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&__items[{k}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __items = __inner.as_seq().ok_or_else(|| \
                             ::serde::DeError::new(\"expected sequence for variant {vn}\"))?;\n\
                             if __items.len() != {n} {{ return Err(::serde::DeError::new(\
                             \"wrong arity for variant {vn}\")); }}\n\
                             Ok({name}::{vn}({})) }}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = named_from_value(
                            &format!("{name}::{vn}"),
                            fields,
                            &format!("{name}::{vn}"),
                        );
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __v = __inner; {ctor} }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::DeError::new(format!(\
                                     \"unknown variant {{__other}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => Err(::serde::DeError::new(format!(\
                                         \"unknown variant {{__other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::DeError::new(format!(\
                                 \"expected variant of {name}, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Constructor expression for named fields read out of `__v` (a map).
fn named_from_value(ctor: &str, fields: &[Field], ty_label: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
            continue;
        }
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!("return Err(::serde::DeError::new(\"missing field {fname} of {ty_label}\"))")
        };
        inits.push_str(&format!(
            "{fname}: match ::serde::value::field(__entries, \"{fname}\") {{\n\
                 Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 None => {missing},\n\
             }},\n"
        ));
    }
    format!(
        "{{ let __entries = __v.as_map().ok_or_else(|| \
           ::serde::DeError::new(\"expected map for {ty_label}\"))?;\n\
           Ok({ctor} {{ {inits} }}) }}"
    )
}
