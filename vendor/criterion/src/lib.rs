//! Offline shim for `criterion`.
//!
//! Same macro/builder surface as criterion 0.5 for the patterns the
//! workspace uses, backed by a simple wall-clock timing loop: calibrate
//! the iteration count to a target measurement window, then report the
//! mean ns/iter on stdout. Under `cargo test` (cargo passes `--test` to
//! `harness = false` bench targets) each benchmark runs a single
//! iteration as a smoke test.

// Vendored shim: exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    smoke_test: bool,
    measurement: Duration,
    /// Mean ns/iter of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times the closure, storing the mean ns/iter.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.smoke_test {
            black_box(f());
            self.last_ns = 0.0;
            return;
        }
        // Calibrate: grow the batch until it takes a visible slice of the
        // measurement window.
        let mut batch: u64 = 1;
        let floor = self.measurement / 50;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let spent = t.elapsed();
            if spent >= floor || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measure.
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            spent += t.elapsed();
            iters += batch;
        }
        self.last_ns = spent.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs a benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    smoke_test: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke_test: false,
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Reads CLI flags the way cargo invokes bench targets: `--test`
    /// switches to single-iteration smoke mode; everything else is
    /// ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.smoke_test = true;
        }
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.label.clone();
        self.run_one(&label, |b| f(b));
        self
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            smoke_test: self.smoke_test,
            measurement: self.measurement,
            last_ns: 0.0,
        };
        f(&mut b);
        if self.smoke_test {
            println!("bench {label}: ok (smoke test)");
        } else {
            println!("bench {label}: {:.1} ns/iter", b.last_ns);
        }
    }
}

/// Bundles benchmark functions into a group runner (shim of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the groups (shim of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            smoke_test: true,
            measurement: Duration::from_millis(1),
        };
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_labels_compose() {
        let mut c = Criterion {
            smoke_test: true,
            measurement: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("inner", 3), &7u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
