//! Offline shim for `rand`.
//!
//! Deterministic per seed, as the workspace requires, but the stream
//! differs from upstream `rand` (SplitMix64 instead of ChaCha12). See
//! `vendor/README.md`.

// Vendored shim: exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation over ranges.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform-ish sample from a range (modulo method; the slight bias is
    /// irrelevant for workload generation).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Ranges that can produce a sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The standard RNG of this shim: SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&x));
            let y = r.gen_range(3usize..10);
            assert!((3..10).contains(&y));
            let z = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&z));
        }
    }
}
