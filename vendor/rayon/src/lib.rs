//! Offline shim for `rayon`.
//!
//! Covers the `par_iter().map().collect()` / `into_par_iter()` pattern the
//! workspace uses, implemented with `std::thread::scope`. Work is handed
//! out by an atomic cursor, results are collected in input order, and
//! worker panics propagate when the scope joins.

// Vendored shim: exempt from the workspace lint gate.
#![allow(clippy::all)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Conversion into a (shim) parallel iterator, by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a (shim) parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;
    /// Builds the parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the elements (order-preserving).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the map on all elements and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map and writes the results (input order) into `out`,
    /// reusing its allocation — mirrors rayon's `collect_into_vec`.
    pub fn collect_into_vec(self, out: &mut Vec<R>) {
        out.clear();
        out.extend(parallel_map(self.items, &self.f));
    }
}

/// Worker count the shim would fan out over — mirrors rayon's
/// `current_num_threads` (the machine's available parallelism; there is
/// no configurable pool in the shim).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over scoped threads.
fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot taken once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_vec_refs() {
        let data = vec![1i64, 2, 3, 4];
        let out: Vec<i64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }
}
