//! The JSON-like data model the shimmed `Serialize`/`Deserialize` traits
//! target.

/// A self-describing value: the intermediate form between Rust types and
/// serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (i128 covers every integer type in the workspace).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The integer payload, accepting integral floats.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i128),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The sequence payload.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The map payload.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Looks up a field in a map payload (first match).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// Identity impls so untyped JSON can flow through `serde_json::from_str`
// / `to_string` (mirrors upstream `serde_json::Value`).
impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, crate::DeError> {
        Ok(v.clone())
    }
}
