//! Offline shim for `serde`.
//!
//! Provides `Serialize`/`Deserialize` traits over a JSON-like [`Value`]
//! data model, plus derive macros (re-exported from `serde_derive`).
//! See `vendor/README.md` for the rationale and deviations.

// Vendored shim: exempt from the workspace lint gate.
#![allow(clippy::all)]

pub mod value;

pub use value::Value;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_int().ok_or_else(|| {
                    DeError::new(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::new(format!("integer {i} out of range")))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::new(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected 1-char string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_seq().ok_or_else(|| {
                    DeError::new(format!("expected tuple sequence, got {}", v.kind()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl<K, V> Serialize for std::collections::HashMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sequence-of-pairs encoding: supports non-string keys in JSON.
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::new(format!("expected map pairs, got {}", v.kind())))?;
        let mut out = std::collections::HashMap::with_capacity(items.len());
        for item in items {
            let pair = item
                .as_seq()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| DeError::new("expected [key, value] pair"))?;
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::new(format!("expected map pairs, got {}", v.kind())))?;
        let mut out = std::collections::BTreeMap::new();
        for item in items {
            let pair = item
                .as_seq()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| DeError::new("expected [key, value] pair"))?;
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<i64> = Deserialize::from_value(&vec![1i64, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn map_roundtrip() {
        let mut m = std::collections::HashMap::new();
        m.insert((1u32, 2u32), 5i64);
        let back: std::collections::HashMap<(u32, u32), i64> =
            Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
