#!/usr/bin/env bash
# CI gate: no panicking calls in non-test library code of the gated crates.
#
# For every Rust source file under the gated crates, strip the trailing
# test module (everything from the first file-scope `#[cfg(test)]` line,
# by repo convention the last item of a file) and grep the remainder for
# `.unwrap()`, `.expect(` and `panic!`. Any hit fails the gate.
set -u
fail=0
for crate in traj-model traj-analysis traj-diffserv traj-holistic traj-obs traj-netcalc traj-soak traj-serve; do
    for f in $(find "crates/$crate/src" -name '*.rs' | sort); do
        cut=$(grep -n '^#\[cfg(test)\]' "$f" | head -1 | cut -d: -f1)
        if [ -n "$cut" ]; then
            body=$(head -n $((cut - 1)) "$f")
        else
            body=$(cat "$f")
        fi
        hits=$(printf '%s\n' "$body" | grep -nE '\.unwrap\(\)|\.expect\(|panic!')
        if [ -n "$hits" ]; then
            printf '%s\n' "$hits" | sed "s|^|$f:|"
            fail=1
        fi
    done
done
if [ "$fail" -ne 0 ]; then
    echo "panic gate: panicking calls found in non-test library code" >&2
    exit 1
fi
echo "panic gate: clean"
