//! Quickstart: model a small network, bound every flow's worst-case
//! end-to-end response time, and check deadlines.
//!
//! Run: `cargo run --example quickstart`

use fifo_trajectory::analysis::{analyze_all, AnalysisConfig};
use fifo_trajectory::model::{FlowSet, Network, Path, SporadicFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-node network; every link has a delay in [1, 2] ticks.
    let network = Network::uniform(6, 1, 2)?;

    // Three sporadic flows. Times are in ticks: a flow releases a packet
    // at most every `period` ticks; each packet needs `cost` ticks of
    // transmission per node; `deadline` is end-to-end.
    let flows = vec![
        SporadicFlow::uniform(1, Path::from_ids([1, 2, 3, 4])?, 100, 5, 0, 80)?.named("video"),
        SporadicFlow::uniform(2, Path::from_ids([5, 2, 3, 6])?, 50, 3, 2, 70)?.named("voice"),
        SporadicFlow::uniform(3, Path::from_ids([5, 2, 3, 4])?, 200, 8, 0, 120)?.named("bulk"),
    ];
    let set = FlowSet::new(network, flows)?;

    // Property 2 (trajectory approach), faithful configuration.
    let report = analyze_all(&set, &AnalysisConfig::default());
    for r in report.per_flow() {
        println!(
            "{:<6} wcrt = {:>4?}  jitter <= {:>3?}  deadline {}  -> {}",
            r.name,
            r.wcrt.value().unwrap(),
            r.jitter.unwrap(),
            r.deadline,
            if r.meets_deadline() == Some(true) {
                "OK"
            } else {
                "MISS"
            },
        );
    }
    println!(
        "\nset is {}schedulable",
        if report.all_schedulable() { "" } else { "NOT " }
    );
    Ok(())
}
