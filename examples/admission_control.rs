//! Deterministic EF admission control (paper §6.2): voice sessions join a
//! DiffServ domain one by one; each is admitted only if every EF flow —
//! including the newcomer — keeps its Property 3 deadline guarantee.
//!
//! Run: `cargo run --release --example admission_control`

use fifo_trajectory::analysis::AnalysisConfig;
use fifo_trajectory::diffserv::{AdmissionController, AdmissionDecision};
use fifo_trajectory::model::{FlowSet, Network, Path, SporadicFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-router backbone with one long-standing EF flow.
    let network = Network::uniform(4, 1, 1)?;
    let trunk = Path::from_ids([1, 2, 3, 4])?;
    let base = FlowSet::new(
        network,
        vec![SporadicFlow::uniform(1, trunk.clone(), 40, 3, 0, 60)?.named("backbone")],
    )?;

    let mut controller = AdmissionController::new(base, AnalysisConfig::default());

    // Voice sessions arrive: 20ms period, 2-tick packets, 50-tick deadline.
    println!("admitting voice sessions onto {trunk} until capacity runs out:\n");
    let mut admitted = Vec::new();
    for id in 10..40u32 {
        let session =
            SporadicFlow::uniform(id, trunk.clone(), 40, 2, 1, 50)?.named(format!("voice_{id}"));
        match controller.try_admit(session) {
            AdmissionDecision::Admitted { wcrt } => {
                println!("voice_{id}: ADMITTED   (guaranteed wcrt <= {wcrt})");
                admitted.push(id);
            }
            AdmissionDecision::Rejected { victim, wcrt } => {
                println!("voice_{id}: REJECTED   (flow {victim} would reach {wcrt:?} > deadline)");
                break;
            }
            AdmissionDecision::Invalid(msg) => {
                println!("voice_{id}: INVALID    ({msg})");
                break;
            }
        }
    }
    println!(
        "\ncapacity: {} concurrent sessions with hard guarantees",
        admitted.len()
    );

    // A session ends; the freed budget admits a newcomer.
    let freed = admitted[0];
    assert!(controller
        .release(fifo_trajectory::model::FlowId(freed))
        .released());
    println!("\nvoice_{freed} hangs up;");
    let late = SporadicFlow::uniform(99, trunk.clone(), 40, 2, 1, 50)?.named("voice_99");
    match controller.try_admit(late) {
        AdmissionDecision::Admitted { wcrt } => {
            println!("voice_99: ADMITTED into the freed slot (wcrt <= {wcrt})")
        }
        other => println!("voice_99: unexpectedly not admitted: {other:?}"),
    }

    println!(
        "\nfinal load: {} flows, max node utilisation {:.1}%",
        controller.flows().len(),
        100.0 * controller.flows().max_utilisation()
    );
    Ok(())
}
