//! Analyze a flow set loaded from JSON — the batch interface for using
//! the library from other toolchains.
//!
//! Usage:
//!   cargo run -p fifo-trajectory --example analyze_json -- <flows.json>
//!   cargo run -p fifo-trajectory --example analyze_json -- --emit-sample > flows.json
//!
//! The JSON schema is the serde form of `FlowSet` (see `--emit-sample`).

use fifo_trajectory::analysis::{analyze_all, analyze_ef, slacks, AnalysisConfig};
use fifo_trajectory::holistic::{analyze_holistic, HolisticConfig};
use fifo_trajectory::model::examples::paper_example;
use fifo_trajectory::model::FlowSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    let set: FlowSet = match arg.as_deref() {
        Some("--emit-sample") => {
            println!("{}", serde_json::to_string_pretty(&paper_example())?);
            return Ok(());
        }
        Some(path) => serde_json::from_str(&std::fs::read_to_string(path)?)?,
        None => {
            eprintln!("no input file given; analysing the built-in paper example");
            paper_example()
        }
    };

    let cfg = AnalysisConfig::default();
    let traj = analyze_all(&set, &cfg);
    let hol = analyze_holistic(&set, &HolisticConfig::default());
    let ef = analyze_ef(&set, &cfg);

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "flow", "trajectory", "holistic", "ef(P3)", "deadline", "verdict"
    );
    for (i, r) in traj.per_flow().iter().enumerate() {
        let fmt = |v: Option<i64>| v.map(|x| x.to_string()).unwrap_or("-".into());
        let efb = ef.for_flow(r.flow).and_then(|x| x.wcrt.value());
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>9} {:>7}",
            r.name,
            fmt(r.wcrt.value()),
            fmt(hol.per_flow()[i].wcrt.value()),
            fmt(efb),
            r.deadline,
            match r.meets_deadline() {
                Some(true) => "ok",
                Some(false) => "MISS",
                None => "UNBOUND",
            }
        );
    }

    println!("\nmost constrained flows (slack = deadline - bound):");
    for s in slacks(&set, &cfg).iter().take(3) {
        println!("  flow {}: slack {:?}", s.flow, s.slack);
    }

    // Machine-readable output on demand.
    if std::env::var("ANALYZE_JSON_OUT").is_ok() {
        println!("{}", serde_json::to_string_pretty(&traj)?);
    }
    Ok(())
}
