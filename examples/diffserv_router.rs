//! The paper's §6 scenario: voice-over-IP flows in the EF class crossing a
//! DiffServ domain, with assured-forwarding and best-effort cross traffic.
//!
//! Demonstrates Figure 3 routers (EF at fixed priority, SFQ below),
//! Lemma 4's non-preemption delay, Property 3 bounds, and the simulated
//! behaviour of the same domain.
//!
//! Run: `cargo run --release --example diffserv_router`

use fifo_trajectory::analysis::nonpreemption_delta;
use fifo_trajectory::diffserv::{DiffServDomain, Dscp, PerHopBehaviour, TokenBucket};
use fifo_trajectory::model::flow::TrafficClass;
use fifo_trajectory::model::{FlowSet, Network, Path, SporadicFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ISP edge: two voice flows (EF), one video flow (AF1), one bulk
    // transfer (best effort), sharing a 5-router chain.
    let network = Network::uniform(5, 1, 1)?;
    let chain = Path::from_ids([1, 2, 3, 4, 5])?;
    let flows = vec![
        SporadicFlow::uniform(1, chain.clone(), 50, 2, 1, 80)?
            .named("voip_a")
            .with_class(TrafficClass::Ef),
        SporadicFlow::uniform(2, Path::from_ids([2, 3, 4])?, 50, 2, 1, 50)?
            .named("voip_b")
            .with_class(TrafficClass::Ef),
        SporadicFlow::uniform(3, chain.clone(), 40, 6, 0, 10_000)?
            .named("video")
            .with_class(TrafficClass::Af(1)),
        SporadicFlow::uniform(4, chain.clone(), 60, 12, 0, 10_000)?
            .named("bulk")
            .with_class(TrafficClass::BestEffort),
    ];
    let domain = DiffServDomain::new(FlowSet::new(network, flows)?);

    println!("=== Classification (RFC 2474/2597/2598 codepoints) ===");
    for f in domain.flows().flows() {
        let phb = domain.phb(f);
        println!("{:<8} -> {:?} (DSCP {:#08b})", f.name, phb, phb.dscp().0);
    }
    assert_eq!(PerHopBehaviour::classify(Dscp::EF), PerHopBehaviour::Ef);

    println!("\n=== Ingress conditioning (token buckets) ===");
    for f in domain.flows().ef_flows() {
        let mut tb = TokenBucket::for_flow(f);
        println!(
            "{}: rate {}/{} per tick, burst {}",
            f.name, tb.rate_num, tb.rate_den, tb.burst
        );
        // A conformant packet passes, a back-to-back violation is shaped.
        assert!(tb.police(0, f.max_cost()));
        let shaped_until = tb.shape(1, f.max_cost());
        println!("  back-to-back second packet shaped until t = {shaped_until}");
    }

    println!("\n=== Property 3: EF worst-case bounds with non-preemption ===");
    let report = domain.ef_bounds();
    for r in report.per_flow() {
        let f = domain.flows().flow(r.flow).unwrap();
        let delta = nonpreemption_delta(domain.flows(), f, &f.path);
        println!(
            "{:<8} delta = {:>2}, wcrt <= {:>3}, deadline {:>3} -> {}",
            r.name,
            delta,
            r.wcrt.value().unwrap(),
            r.deadline,
            if r.meets_deadline() == Some(true) {
                "OK"
            } else {
                "MISS"
            }
        );
    }

    println!("\n=== Simulated domain (Figure 3 routers) ===");
    let sim = domain.simulator(64);
    let out = sim.run_periodic(&vec![0; domain.flows().len()]);
    for (s, f) in out.flows.iter().zip(domain.flows().flows()) {
        println!(
            "{:<8} delivered {:>3} packets, response in [{}, {}]",
            f.name, s.delivered, s.min_response, s.max_response
        );
    }
    // EF observed responses must respect the Property 3 bounds.
    for r in report.per_flow() {
        let s = out.for_flow(r.flow).unwrap();
        assert!(s.max_response <= r.wcrt.value().unwrap());
    }
    println!("\nEF observed <= Property 3 bounds  [ok]");
    Ok(())
}
