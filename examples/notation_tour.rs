//! A tour of the paper's §2.2 notation (Figure 1) on the worked example:
//! `first_{j,i}`, `last_{j,i}`, crossing directions, `slow_{j,i}`,
//! `Smin`, `Smax` and `M`, printed for every flow pair.
//!
//! Run: `cargo run --example notation_tour`

use fifo_trajectory::analysis::{AnalysisConfig, Analyzer};
use fifo_trajectory::model::examples::paper_example;
use fifo_trajectory::model::{CrossDirection, MinConvention, SminMode};

fn main() {
    let set = paper_example();

    println!("paths:");
    for f in set.flows() {
        println!("  P{} = {}", f.id, f.path);
    }

    println!("\npairwise crossing relations (Figure 1):");
    for fi in set.flows() {
        for fj in set.flows() {
            if fi.id == fj.id || !set.crosses(fj, &fi.path) {
                continue;
            }
            let dir = match set.direction(fj, &fi.path) {
                Some(CrossDirection::Same) => "same direction",
                Some(CrossDirection::Reverse) => "REVERSE direction",
                None => unreachable!("crossing checked"),
            };
            println!(
                "  tau_{j} over P{i}: first_{{{j},{i}}} = {first}, last_{{{j},{i}}} = {last}, \
                 entry on P{i} = {entry}, {dir}, C^slow_{{{j},{i}}} = {slow}",
                i = fi.id,
                j = fj.id,
                first = set.first_on(fj, &fi.path).unwrap(),
                last = set.last_on(fj, &fi.path).unwrap(),
                entry = set.entry_on_path(fj, &fi.path).unwrap(),
                slow = set.slow_cost_on(fj, &fi.path),
            );
        }
    }

    println!("\nper-flow quantities:");
    let cfg = AnalysisConfig::default();
    let an = Analyzer::new(&set, &cfg).expect("example is schedulable");
    for (idx, f) in set.flows().iter().enumerate() {
        println!("  tau_{} (slow node = {}):", f.id, f.slow_node());
        for &h in f.path.nodes() {
            let smin = set.smin(f, h, SminMode::ProcessingAndLink).unwrap();
            let smax = an.smax().get(&set, idx, h).unwrap();
            let m = set.m_term(&f.path, h, MinConvention::Visiting).unwrap();
            println!("    node {h}: Smin = {smin:>2}, Smax = {smax:>2} (fixed point), M = {m:>2}");
        }
    }

    println!("\nnote: tau_2 crosses P3/P4 in reverse (visits 10 before 7 while");
    println!("P3 visits 7 before 10) - the case Figure 1(2) illustrates.");
}
