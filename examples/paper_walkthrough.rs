//! Walkthrough of the paper's §5 example: Figure-2-style decomposition of
//! each trajectory bound, the holistic comparison of Table 2, and an
//! adversarial simulation cross-check.
//!
//! Run: `cargo run --release --example paper_walkthrough`

use fifo_trajectory::analysis::explain::explain_flow;
use fifo_trajectory::analysis::{analyze_all, AnalysisConfig};
use fifo_trajectory::holistic::{analyze_holistic_detailed, HolisticConfig};
use fifo_trajectory::model::examples::paper_example;
use fifo_trajectory::sim::{adversarial_search, AdversaryParams};

fn main() {
    let set = paper_example();
    let cfg = AnalysisConfig::default();

    println!("=== Trajectory bounds (Property 2), term by term ===\n");
    for f in set.flows() {
        let b = explain_flow(&set, &cfg, f.id).expect("schedulable example");
        println!("{} over {}", f.name, f.path);
        println!("  worst activation instant t* = {}", b.t_star);
        println!("  busy-period search window B = {}", b.busy_period);
        println!(
            "  own packets ahead: {} ({} ticks)",
            b.self_packets, b.self_workload
        );
        for line in &b.interference {
            println!(
                "  interference from tau_{}: window A = {:>3}, {} packet(s), {} ticks",
                line.flow, line.a, line.packets, line.workload
            );
        }
        let extra: i64 = b.per_node_extra.iter().map(|(_, c)| c).sum();
        println!("  per-node extra packets (non-slow nodes): {extra} ticks");
        println!("  link budget: {} ticks", b.links);
        println!("  => bound R = {}  (deadline {})\n", b.bound, f.deadline);
    }

    println!("=== Holistic decomposition (the baseline's pessimism) ===\n");
    let details =
        analyze_holistic_detailed(&set, &HolisticConfig::default()).expect("example converges");
    for d in &details {
        let per: Vec<String> = d
            .nodes
            .iter()
            .map(|n| format!("{}@{}(J={})", n.response, n.node, n.jitter_in))
            .collect();
        println!(
            "tau_{}: {} + links {} = {}",
            d.flow,
            per.join(" + "),
            d.links,
            d.total
        );
    }

    println!("\n=== Table 2 ===\n");
    let traj = analyze_all(&set, &cfg);
    let hol = analyze_holistic_detailed(&set, &HolisticConfig::default()).unwrap();
    println!("flow   trajectory  holistic  deadline");
    for (r, h) in traj.per_flow().iter().zip(&hol) {
        println!(
            "{:<6} {:>9}  {:>8}  {:>8}",
            r.name,
            r.wcrt.value().unwrap(),
            h.total,
            r.deadline
        );
    }

    println!("\n=== Adversarial simulation cross-check ===\n");
    let adv = adversarial_search(
        &set,
        &AdversaryParams {
            trials: 200,
            ..Default::default()
        },
    );
    for (i, r) in traj.per_flow().iter().enumerate() {
        let bound = r.wcrt.value().unwrap();
        println!(
            "{}: observed {} <= bound {}  (margin {})",
            r.name,
            adv.observed[i],
            bound,
            bound - adv.observed[i]
        );
        assert!(adv.observed[i] <= bound);
    }
}
