//! # fifo-trajectory
//!
//! Worst-case end-to-end response-time analysis of FIFO-scheduled sporadic
//! flows using the **trajectory approach**, with the DiffServ Expedited
//! Forwarding application — a reproduction of Martin & Minet, *"Schedulability
//! analysis of flows scheduled with FIFO: application to the Expedited
//! Forwarding class"*, IPDPS 2006.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`model`] — network, paths, sporadic flows, path relations;
//! * [`analysis`] — Property 1/2 trajectory bounds, Definition 2 jitter,
//!   Lemma 4 / Property 3 EF bounds;
//! * [`holistic`] — the holistic baseline the paper compares against;
//! * [`netcalc`] — a network-calculus baseline plus the Charny–Le Boudec
//!   aggregate-FIFO bound;
//! * [`sim`] — a discrete-event simulator used to validate the analytical
//!   bounds empirically;
//! * [`diffserv`] — DiffServ classes, traffic conditioning and EF
//!   admission control;
//! * [`soak`] — churn + fault-storm soak engine with continuous
//!   bit-identity auditing;
//! * [`serve`] — the admission daemon: warm Property-3 decisions over a
//!   newline-delimited JSON line protocol, with verified snapshot
//!   restore across restarts.
//!
//! ## Quickstart
//!
//! ```
//! use fifo_trajectory::model::examples::paper_example;
//! use fifo_trajectory::analysis::{analyze_all, AnalysisConfig};
//!
//! let flows = paper_example();
//! let report = analyze_all(&flows, &AnalysisConfig::default());
//! for r in report.per_flow() {
//!     println!("{}: wcrt = {:?} (deadline {})", r.flow, r.wcrt, r.deadline);
//! }
//! assert!(report.all_schedulable());
//! ```

pub use traj_analysis as analysis;
pub use traj_diffserv as diffserv;
pub use traj_holistic as holistic;
pub use traj_model as model;
pub use traj_netcalc as netcalc;
pub use traj_serve as serve;
pub use traj_sim as sim;
pub use traj_soak as soak;
