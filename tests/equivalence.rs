//! Differential equivalence suite for the interference-structure cache
//! and the incremental fault re-analysis.
//!
//! The cached analyzer (`analyze_all`, under both fixed-point
//! strategies) must produce bounds bit-identical to the retained naive
//! reference (`analyze_all_reference`, the pre-cache implementation that
//! reassembles every bound function from scratch) — on the paper
//! example and on random meshes, in every `SmaxMode` × `MinConvention`
//! × `SminMode` × `ReverseCounting` configuration corner.
//!
//! The same contract covers survivability: `reanalyze` (warm-started
//! from the healthy fixed point, dirty-closure-pruned) must agree
//! bit-for-bit with `analyze_degraded` (cold) for arbitrary link/node
//! failures, in every configuration corner.

use fifo_trajectory::analysis::{
    analyze_all, analyze_all_reference, analyze_degraded, config_grid, reanalyze, AnalysisConfig,
    Analyzer, FixpointStrategy, Verdict,
};
use fifo_trajectory::model::examples::paper_example;
use fifo_trajectory::model::gen::{random_mesh, MeshParams};
use fifo_trajectory::model::FaultScenario;
use proptest::prelude::*;

/// Bounds of all three engines on one set under one base configuration.
fn assert_all_engines_agree(
    set: &fifo_trajectory::model::FlowSet,
    base: &AnalysisConfig,
) -> Result<(), TestCaseError> {
    let reference = analyze_all_reference(set, base);
    let jacobi = analyze_all(
        set,
        &AnalysisConfig {
            fixpoint: FixpointStrategy::Jacobi,
            ..base.clone()
        },
    );
    let gauss = analyze_all(
        set,
        &AnalysisConfig {
            fixpoint: FixpointStrategy::GaussSeidel,
            ..base.clone()
        },
    );
    prop_assert_eq!(&reference.bounds(), &jacobi.bounds(), "jacobi vs reference");
    prop_assert_eq!(
        &reference.bounds(),
        &gauss.bounds(),
        "gauss-seidel vs reference"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_bounds_match_reference_on_random_meshes(seed in 0u64..1_000_000) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.7,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        for base in config_grid() {
            assert_all_engines_agree(&set, &base)?;
        }
    }

    #[test]
    fn incremental_fault_reanalysis_matches_cold_start(
        seed in 0u64..1_000_000,
        fault_pick in 0usize..64,
    ) {
        let kill_node = fault_pick % 2 == 0;
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.7,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let scenario = if kill_node {
            let nodes = set.network().nodes().to_vec();
            FaultScenario::node_down(nodes[fault_pick % nodes.len()])
        } else {
            let links: Vec<_> = set
                .flows()
                .iter()
                .flat_map(|f| f.path.links())
                .collect();
            let (a, b) = links[fault_pick % links.len()];
            FaultScenario::link_down(a, b)
        };
        let Ok(degraded) = scenario.apply(&set) else {
            // The fault killed everything: nothing to compare.
            return Ok(());
        };
        for cfg in config_grid() {
            let Ok(healthy) = Analyzer::new(&set, &cfg) else {
                // No healthy fixed point to warm-start from.
                continue;
            };
            let re = reanalyze(&healthy, &degraded, &cfg);
            let scratch = analyze_degraded(&degraded, &cfg);
            for (a, b) in re.report.per_flow().iter().zip(scratch.per_flow()) {
                prop_assert_eq!(&a.wcrt, &b.wcrt, "wcrt diverged, cfg {:?}", cfg);
                prop_assert_eq!(&a.jitter, &b.jitter, "jitter diverged, cfg {:?}", cfg);
            }
        }
    }

    #[test]
    fn cached_bounds_match_reference_on_loaded_meshes(seed in 0u64..1_000_000) {
        // Higher utilisation exercises longer busy periods, more fixed
        // point rounds, and the occasional overload verdict; bounded
        // verdicts must still agree everywhere (default config corner).
        let p = MeshParams {
            nodes: 6,
            flows: 8,
            max_utilisation: 0.95,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        assert_all_engines_agree(&set, &AnalysisConfig::default())?;
    }
}

#[test]
fn cached_bounds_match_reference_on_paper_example_everywhere() {
    let set = paper_example();
    for base in config_grid() {
        assert_all_engines_agree(&set, &base).unwrap();
    }
}

#[test]
fn near_i64_max_parameters_yield_overflow_verdicts_not_wraparound() {
    // Three flows on one node, each with cost ~ i64::MAX/4 and combined
    // utilisation 1.5: the busy-period iteration grows until `k * C`
    // leaves i64. Pre-hardening this wrapped silently (debug: abort;
    // release: negative bounds); now it must surface as a typed verdict.
    use fifo_trajectory::model::examples::line_topology;
    let cost = i64::MAX / 4;
    let set = line_topology(3, 1, 2 * cost, cost, 1, 1).unwrap();
    let cfg = AnalysisConfig {
        max_busy_period: i64::MAX,
        ..Default::default()
    };
    let report = analyze_all(&set, &cfg);
    for r in report.per_flow() {
        assert!(
            matches!(r.wcrt, Verdict::Overflow { .. } | Verdict::Unbounded { .. }),
            "expected a typed failure verdict, got {:?}",
            r.wcrt
        );
        assert!(
            r.wcrt.value().is_none(),
            "no numeric bound may escape an overflowing instance"
        );
    }
    assert!(
        report
            .per_flow()
            .iter()
            .any(|r| matches!(r.wcrt, Verdict::Overflow { .. })),
        "at least one flow must report the overflow itself"
    );
}

#[test]
fn cached_bounds_match_reference_on_a_midsize_mesh() {
    // One deterministic mid-size instance (beyond proptest's small
    // meshes) through every configuration corner.
    let p = MeshParams {
        nodes: 12,
        flows: 16,
        max_utilisation: 0.7,
        ..Default::default()
    };
    let set = random_mesh(42, &p).unwrap();
    for base in config_grid() {
        assert_all_engines_agree(&set, &base).unwrap();
    }
}
