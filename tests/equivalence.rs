//! Differential equivalence suite for the interference-structure cache.
//!
//! The cached analyzer (`analyze_all`, under both fixed-point
//! strategies) must produce bounds bit-identical to the retained naive
//! reference (`analyze_all_reference`, the pre-cache implementation that
//! reassembles every bound function from scratch) — on the paper
//! example and on random meshes, in every `SmaxMode` × `MinConvention`
//! × `SminMode` × `ReverseCounting` configuration corner.

use fifo_trajectory::analysis::{
    analyze_all, analyze_all_reference, config_grid, AnalysisConfig, FixpointStrategy,
};
use fifo_trajectory::model::examples::paper_example;
use fifo_trajectory::model::gen::{random_mesh, MeshParams};
use proptest::prelude::*;

/// Bounds of all three engines on one set under one base configuration.
fn assert_all_engines_agree(
    set: &fifo_trajectory::model::FlowSet,
    base: &AnalysisConfig,
) -> Result<(), TestCaseError> {
    let reference = analyze_all_reference(set, base);
    let jacobi = analyze_all(
        set,
        &AnalysisConfig {
            fixpoint: FixpointStrategy::Jacobi,
            ..base.clone()
        },
    );
    let gauss = analyze_all(
        set,
        &AnalysisConfig {
            fixpoint: FixpointStrategy::GaussSeidel,
            ..base.clone()
        },
    );
    prop_assert_eq!(&reference.bounds(), &jacobi.bounds(), "jacobi vs reference");
    prop_assert_eq!(
        &reference.bounds(),
        &gauss.bounds(),
        "gauss-seidel vs reference"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_bounds_match_reference_on_random_meshes(seed in 0u64..1_000_000) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.7,
            ..Default::default()
        };
        let set = random_mesh(seed, &p);
        for base in config_grid() {
            assert_all_engines_agree(&set, &base)?;
        }
    }

    #[test]
    fn cached_bounds_match_reference_on_loaded_meshes(seed in 0u64..1_000_000) {
        // Higher utilisation exercises longer busy periods, more fixed
        // point rounds, and the occasional overload verdict; bounded
        // verdicts must still agree everywhere (default config corner).
        let p = MeshParams {
            nodes: 6,
            flows: 8,
            max_utilisation: 0.95,
            ..Default::default()
        };
        let set = random_mesh(seed, &p);
        assert_all_engines_agree(&set, &AnalysisConfig::default())?;
    }
}

#[test]
fn cached_bounds_match_reference_on_paper_example_everywhere() {
    let set = paper_example();
    for base in config_grid() {
        assert_all_engines_agree(&set, &base).unwrap();
    }
}

#[test]
fn cached_bounds_match_reference_on_a_midsize_mesh() {
    // One deterministic mid-size instance (beyond proptest's small
    // meshes) through every configuration corner.
    let p = MeshParams {
        nodes: 12,
        flows: 16,
        max_utilisation: 0.7,
        ..Default::default()
    };
    let set = random_mesh(42, &p);
    for base in config_grid() {
        assert_all_engines_agree(&set, &base).unwrap();
    }
}
