//! Differential equivalence suite for the interference-structure cache
//! and the incremental fault re-analysis.
//!
//! The cached analyzer (`analyze_all`, under both fixed-point
//! strategies) must produce bounds bit-identical to the retained naive
//! reference (`analyze_all_reference`, the pre-cache implementation that
//! reassembles every bound function from scratch) — on the paper
//! example and on random meshes, in every `SmaxMode` × `MinConvention`
//! × `SminMode` × `ReverseCounting` configuration corner.
//!
//! The same contract covers survivability: `reanalyze` (warm-started
//! from the healthy fixed point, dirty-closure-pruned) must agree
//! bit-for-bit with `analyze_degraded` (cold) for arbitrary link/node
//! failures, in every configuration corner.

use fifo_trajectory::analysis::{
    analyze_all, analyze_all_reference, analyze_degraded, analyze_ef, config_grid, reanalyze,
    AnalysisConfig, Analyzer, FixpointStrategy, ShardMode, Verdict,
};
use fifo_trajectory::model::examples::paper_example;
use fifo_trajectory::model::gen::{
    backbone_mesh, fat_tree, random_mesh, BackboneParams, FatTreeParams, MeshParams,
};
use fifo_trajectory::model::FaultScenario;
use proptest::prelude::*;

/// Bounds of all three engines on one set under one base configuration.
fn assert_all_engines_agree(
    set: &fifo_trajectory::model::FlowSet,
    base: &AnalysisConfig,
) -> Result<(), TestCaseError> {
    let reference = analyze_all_reference(set, base);
    let jacobi = analyze_all(
        set,
        &AnalysisConfig {
            fixpoint: FixpointStrategy::Jacobi,
            ..base.clone()
        },
    );
    let gauss = analyze_all(
        set,
        &AnalysisConfig {
            fixpoint: FixpointStrategy::GaussSeidel,
            ..base.clone()
        },
    );
    prop_assert_eq!(&reference.bounds(), &jacobi.bounds(), "jacobi vs reference");
    prop_assert_eq!(
        &reference.bounds(),
        &gauss.bounds(),
        "gauss-seidel vs reference"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_bounds_match_reference_on_random_meshes(seed in 0u64..1_000_000) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.7,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        for base in config_grid() {
            assert_all_engines_agree(&set, &base)?;
        }
    }

    #[test]
    fn incremental_fault_reanalysis_matches_cold_start(
        seed in 0u64..1_000_000,
        fault_pick in 0usize..64,
    ) {
        let kill_node = fault_pick % 2 == 0;
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.7,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let scenario = if kill_node {
            let nodes = set.network().nodes().to_vec();
            FaultScenario::node_down(nodes[fault_pick % nodes.len()])
        } else {
            let links: Vec<_> = set
                .flows()
                .iter()
                .flat_map(|f| f.path.links())
                .collect();
            let (a, b) = links[fault_pick % links.len()];
            FaultScenario::link_down(a, b)
        };
        let Ok(degraded) = scenario.apply(&set) else {
            // The fault killed everything: nothing to compare.
            return Ok(());
        };
        for cfg in config_grid() {
            let Ok(healthy) = Analyzer::new(&set, &cfg) else {
                // No healthy fixed point to warm-start from.
                continue;
            };
            let re = reanalyze(&healthy, &degraded, &cfg);
            let scratch = analyze_degraded(&degraded, &cfg);
            for (a, b) in re.report.per_flow().iter().zip(scratch.per_flow()) {
                prop_assert_eq!(&a.wcrt, &b.wcrt, "wcrt diverged, cfg {:?}", cfg);
                prop_assert_eq!(&a.jitter, &b.jitter, "jitter diverged, cfg {:?}", cfg);
            }
        }
    }

    #[test]
    fn cached_bounds_match_reference_on_loaded_meshes(seed in 0u64..1_000_000) {
        // Higher utilisation exercises longer busy periods, more fixed
        // point rounds, and the occasional overload verdict; bounded
        // verdicts must still agree everywhere (default config corner).
        let p = MeshParams {
            nodes: 6,
            flows: 8,
            max_utilisation: 0.95,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        assert_all_engines_agree(&set, &AnalysisConfig::default())?;
    }
}

#[test]
fn cached_bounds_match_reference_on_paper_example_everywhere() {
    let set = paper_example();
    for base in config_grid() {
        assert_all_engines_agree(&set, &base).unwrap();
    }
}

#[test]
fn near_i64_max_parameters_yield_overflow_verdicts_not_wraparound() {
    // Three flows on one node, each with cost ~ i64::MAX/4 and combined
    // utilisation 1.5: the busy-period iteration grows until `k * C`
    // leaves i64. Pre-hardening this wrapped silently (debug: abort;
    // release: negative bounds); now it must surface as a typed verdict.
    use fifo_trajectory::model::examples::line_topology;
    let cost = i64::MAX / 4;
    let set = line_topology(3, 1, 2 * cost, cost, 1, 1).unwrap();
    let cfg = AnalysisConfig {
        max_busy_period: i64::MAX,
        ..Default::default()
    };
    let report = analyze_all(&set, &cfg);
    for r in report.per_flow() {
        assert!(
            matches!(r.wcrt, Verdict::Overflow { .. } | Verdict::Unbounded { .. }),
            "expected a typed failure verdict, got {:?}",
            r.wcrt
        );
        assert!(
            r.wcrt.value().is_none(),
            "no numeric bound may escape an overflowing instance"
        );
    }
    assert!(
        report
            .per_flow()
            .iter()
            .any(|r| matches!(r.wcrt, Verdict::Overflow { .. })),
        "at least one flow must report the overflow itself"
    );
}

/// Component-sharded fixed point vs the monolithic loop on the same set:
/// identical `Smax` tables and per-flow verdicts, under both strategies.
fn assert_sharded_matches_monolithic(
    set: &fifo_trajectory::model::FlowSet,
    base: &AnalysisConfig,
) -> Result<(), TestCaseError> {
    for strategy in [FixpointStrategy::Jacobi, FixpointStrategy::GaussSeidel] {
        let sharded_cfg = AnalysisConfig {
            fixpoint: strategy,
            shard_mode: ShardMode::Components,
            ..base.clone()
        };
        let mono_cfg = AnalysisConfig {
            fixpoint: strategy,
            shard_mode: ShardMode::Monolithic,
            ..base.clone()
        };
        let sharded = Analyzer::new(set, &sharded_cfg);
        let mono = Analyzer::new(set, &mono_cfg);
        match (sharded, mono) {
            (Ok(s), Ok(m)) => {
                prop_assert_eq!(
                    s.smax().values(),
                    m.smax().values(),
                    "Smax tables diverged, strategy {:?}",
                    strategy
                );
                for i in 0..set.len() {
                    prop_assert_eq!(
                        s.wcrt(i),
                        m.wcrt(i),
                        "wcrt diverged for flow {}, strategy {:?}",
                        i,
                        strategy
                    );
                }
            }
            (Err(sv), Err(mv)) => {
                prop_assert_eq!(sv, mv, "failure verdicts diverged, strategy {:?}", strategy);
            }
            (s, m) => {
                return Err(TestCaseError::fail(format!(
                    "engines disagree on success: sharded {:?}, monolithic {:?} ({strategy:?})",
                    s.map(|_| ()),
                    m.map(|_| ())
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_matches_monolithic_on_random_meshes(seed in 0u64..1_000_000) {
        let p = MeshParams {
            nodes: 10,
            flows: 12,
            max_utilisation: 0.8,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        for base in config_grid() {
            assert_sharded_matches_monolithic(&set, &base)?;
        }
    }

    #[test]
    fn sharded_matches_monolithic_on_fat_trees(
        seed in 0u64..1_000_000,
        locality_pick in 0usize..3,
    ) {
        // locality 1.0 keeps traffic pod-local (many components), 0.0
        // spreads it across the core (one giant component): both sides of
        // the delegation threshold are exercised.
        let p = FatTreeParams {
            pods: 3,
            flows: 24,
            locality: [1.0, 0.5, 0.0][locality_pick],
            ..Default::default()
        };
        let set = fat_tree(seed, &p).unwrap();
        let base = AnalysisConfig::default();
        assert_sharded_matches_monolithic(&set, &base)?;
        // The EF pipeline (non-preemption delta, class-restricted
        // universe) must shard identically too.
        let ef_sharded = analyze_ef(&set, &base);
        let ef_mono = analyze_ef(
            &set,
            &AnalysisConfig {
                shard_mode: ShardMode::Monolithic,
                ..base
            },
        );
        for (a, b) in ef_sharded.per_flow().iter().zip(ef_mono.per_flow()) {
            prop_assert_eq!(&a.wcrt, &b.wcrt, "EF wcrt diverged");
            prop_assert_eq!(&a.jitter, &b.jitter, "EF jitter diverged");
        }
    }

    #[test]
    fn sharded_matches_monolithic_after_faults(
        seed in 0u64..1_000_000,
        fault_pick in 0usize..32,
    ) {
        let p = FatTreeParams {
            pods: 3,
            flows: 18,
            locality: 0.8,
            ..Default::default()
        };
        let set = fat_tree(seed, &p).unwrap();
        let nodes = set.network().nodes().to_vec();
        let scenario = FaultScenario::node_down(nodes[fault_pick % nodes.len()]);
        let Ok(degraded) = scenario.apply(&set) else {
            return Ok(());
        };
        let sharded_cfg = AnalysisConfig::default();
        let mono_cfg = AnalysisConfig {
            shard_mode: ShardMode::Monolithic,
            ..AnalysisConfig::default()
        };
        // Cold degraded analysis: sharded vs monolithic.
        let cold_sharded = analyze_degraded(&degraded, &sharded_cfg);
        let cold_mono = analyze_degraded(&degraded, &mono_cfg);
        for (a, b) in cold_sharded.per_flow().iter().zip(cold_mono.per_flow()) {
            prop_assert_eq!(&a.wcrt, &b.wcrt, "degraded wcrt diverged");
            prop_assert_eq!(&a.jitter, &b.jitter, "degraded jitter diverged");
        }
        // Warm sharded re-analysis vs cold monolithic: the seeded-
        // component skip must not change a single bound.
        if let Ok(healthy) = Analyzer::new(&set, &sharded_cfg) {
            let re = reanalyze(&healthy, &degraded, &sharded_cfg);
            for (a, b) in re.report.per_flow().iter().zip(cold_mono.per_flow()) {
                prop_assert_eq!(&a.wcrt, &b.wcrt, "warm sharded wcrt diverged");
                prop_assert_eq!(&a.jitter, &b.jitter, "warm sharded jitter diverged");
            }
        }
    }
}

#[test]
fn fat_tree_pods_shard_and_report_component_telemetry() {
    // Fully pod-local traffic on a 4-pod fat tree decomposes into one
    // component per occupied pod; the sharded solver must report them.
    let p = FatTreeParams {
        pods: 4,
        flows: 32,
        locality: 1.0,
        ..Default::default()
    };
    let set = fat_tree(7, &p).unwrap();
    let report = analyze_all(&set, &AnalysisConfig::default());
    let t = report.telemetry().expect("cached engine records telemetry");
    assert!(
        t.components >= 2,
        "pod-local fat tree must decompose, got {} component(s)",
        t.components
    );
    assert!(
        !t.shards.is_empty(),
        "sharded solve must record per-shard telemetry"
    );
    assert_eq!(
        t.shards.iter().map(|s| s.flows).sum::<usize>(),
        set.len(),
        "every flow belongs to exactly one solved shard"
    );
    assert!(t.largest_component >= 1 && t.largest_component <= set.len());

    // Backbone meshes are denser; whatever the component structure,
    // sharded and monolithic bounds agree.
    let bb = backbone_mesh(11, &BackboneParams::default()).unwrap();
    let sharded = analyze_all(&bb, &AnalysisConfig::default());
    let mono = analyze_all(
        &bb,
        &AnalysisConfig {
            shard_mode: ShardMode::Monolithic,
            ..AnalysisConfig::default()
        },
    );
    assert_eq!(sharded.bounds(), mono.bounds());
}

#[test]
fn cached_bounds_match_reference_on_a_midsize_mesh() {
    // One deterministic mid-size instance (beyond proptest's small
    // meshes) through every configuration corner.
    let p = MeshParams {
        nodes: 12,
        flows: 16,
        max_utilisation: 0.7,
        ..Default::default()
    };
    let set = random_mesh(42, &p).unwrap();
    for base in config_grid() {
        assert_all_engines_agree(&set, &base).unwrap();
    }
}
