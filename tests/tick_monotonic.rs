//! Out-of-order tick suite: the retry clock is a monotone envelope.
//!
//! A daemon feeds the admission controller wall-derived `now` values, so
//! the tick sequence can run backwards (NTP steps, clock slew, readings
//! taken on different threads racing past each other). The controller's
//! contract ([`AdmissionController::clock`]) is that it interprets every
//! caller clock on the *monotone envelope* of the values seen so far:
//!
//! * feeding a raw out-of-order sequence must behave **identically** to
//!   feeding its running maximum — same decisions, same retry queues,
//!   same metrics, same clock (the clamp-equivalence property);
//! * the bookkeeping invariants hold after every single operation, in
//!   particular `next_attempt ≤ clock() + effective_cap` (no stranding)
//!   and no entry attempts before its scheduled distance on the
//!   envelope (no premature fire).

use fifo_trajectory::analysis::AnalysisConfig;
use fifo_trajectory::diffserv::AdmissionController;
use fifo_trajectory::model::gen::{random_mesh, MeshParams};
use fifo_trajectory::model::{FaultScenario, NodeId};
use proptest::prelude::*;

/// Asserts the two controllers are observably identical.
fn assert_same(
    raw: &AdmissionController,
    enveloped: &AdmissionController,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(raw.clock(), enveloped.clock());
    prop_assert_eq!(raw.metrics(), enveloped.metrics());
    prop_assert_eq!(raw.retry_queue(), enveloped.retry_queue());
    let ids = |a: &AdmissionController| -> Vec<u32> {
        a.flows().flows().iter().map(|f| f.id.0).collect()
    };
    prop_assert_eq!(ids(raw), ids(enveloped));
    Ok(())
}

/// Asserts the controller's documented clock invariants.
fn assert_clock_invariants(ac: &AdmissionController) -> Result<(), TestCaseError> {
    let violations = ac.check_invariants();
    prop_assert!(violations.is_empty(), "invariants violated: {violations:?}");
    let cap = ac.retry_policy().effective_cap();
    for e in ac.retry_queue() {
        prop_assert!(
            e.next_attempt <= ac.clock().saturating_add(cap),
            "flow {} stranded: next_attempt {} vs clock {} + cap {}",
            e.flow.id,
            e.next_attempt,
            ac.clock(),
            cap
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Clamp equivalence: a controller driven by raw (possibly
    // backwards) tick values is indistinguishable from one driven by
    // the running maximum of the same sequence.
    #[test]
    fn out_of_order_ticks_equal_their_monotone_envelope(
        seed in 0u64..1_000_000,
        dead_node in 1u32..8,
        ticks in proptest::collection::vec(0u64..400, 1..20),
    ) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.65,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let cfg = AnalysisConfig::default();
        let mut raw = AdmissionController::new(set.clone(), cfg.clone());
        let mut env = AdmissionController::new(set, cfg);

        // Populate both retry queues with the same displacement. The
        // fault itself runs at a mid-range time so roughly half the
        // generated ticks land "before" it (backwards).
        let storm = FaultScenario::node_down(NodeId(dead_node));
        let raw_resp = raw.on_fault(&storm, 200);
        let env_resp = env.on_fault(&storm, 200);
        prop_assert_eq!(raw_resp.is_ok(), env_resp.is_ok());
        assert_same(&raw, &env)?;

        let mut high_water = raw.clock();
        for &now in &ticks {
            high_water = high_water.max(now);
            let d_raw = raw.tick(now);
            let d_env = env.tick(high_water);
            prop_assert_eq!(d_raw, d_env, "divergent decisions at now={}", now);
            prop_assert_eq!(raw.clock(), high_water);
            assert_same(&raw, &env)?;
            assert_clock_invariants(&raw)?;
        }
    }

    // The same property through `tick_gated` with a fault that stays
    // active for a while: gated entries never attempt, so backwards
    // ticks exercise the no-op path too, and the backoff schedule that
    // builds up obeys the clock bound throughout.
    #[test]
    fn gated_out_of_order_ticks_keep_the_clock_bound(
        seed in 0u64..1_000_000,
        dead_node in 1u32..8,
        ticks in proptest::collection::vec(0u64..1_000, 1..24),
        gate_after in 0usize..24,
    ) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.65,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let mut ac = AdmissionController::new(set, AnalysisConfig::default());
        let storm = FaultScenario::node_down(NodeId(dead_node));
        let _ = ac.on_fault(&storm, 500);
        assert_clock_invariants(&ac)?;

        let mut last_clock = ac.clock();
        for (i, &now) in ticks.iter().enumerate() {
            // The fault "repairs" after `gate_after` steps.
            let open = i >= gate_after;
            ac.tick_gated(now, |_| open);
            // The clock never runs backwards…
            prop_assert!(ac.clock() >= last_clock);
            prop_assert!(ac.clock() >= now);
            last_clock = ac.clock();
            // …and no entry is stranded or malformed, even while the
            // gate holds every attempt back.
            assert_clock_invariants(&ac)?;
        }
    }
}
