//! Integration of the EF pipeline: Lemma 4 / Property 3 analysis, the
//! DiffServ simulator, and admission control working together.

use fifo_trajectory::analysis::{analyze_ef, nonpreemption_delta, AnalysisConfig};
use fifo_trajectory::diffserv::{AdmissionController, AdmissionDecision, DiffServDomain};
use fifo_trajectory::model::examples::{paper_example, paper_example_with_best_effort};
use fifo_trajectory::model::flow::TrafficClass;
use fifo_trajectory::model::{FlowSet, Network, Path, SporadicFlow};
use fifo_trajectory::sim::{SchedulerKind, SimConfig, Simulator, TieBreak};

#[test]
fn property3_bounds_are_monotone_in_blocker_size() {
    let cfg = AnalysisConfig::default();
    let mut prev: Option<Vec<i64>> = None;
    for be in [1i64, 4, 9, 20, 50] {
        let set = paper_example_with_best_effort(be).unwrap();
        let rep = analyze_ef(&set, &cfg);
        let bounds: Vec<i64> = rep.bounds().into_iter().map(|b| b.unwrap()).collect();
        if let Some(prev) = &prev {
            for (now, before) in bounds.iter().zip(prev) {
                assert!(now >= before, "bound shrank as blockers grew");
            }
        }
        prev = Some(bounds);
    }
}

#[test]
fn delta_only_counts_non_ef_flows() {
    // Same topology, cross traffic declared EF instead of BE: delta
    // vanishes and the interference moves into the FIFO terms.
    let mixed = paper_example_with_best_effort(9).unwrap();
    let all_ef = {
        let flows = mixed
            .flows()
            .iter()
            .map(|f| f.clone().with_class(TrafficClass::Ef))
            .collect();
        FlowSet::new(mixed.network().clone(), flows).unwrap()
    };
    for f in all_ef.flows() {
        assert_eq!(nonpreemption_delta(&all_ef, f, &f.path), 0);
    }
    let with_np = analyze_ef(&mixed, &AnalysisConfig::default());
    for r in with_np.per_flow() {
        let f = mixed.flow(r.flow).unwrap();
        assert!(nonpreemption_delta(&mixed, f, &f.path) > 0);
    }
}

#[test]
fn diffserv_simulation_respects_property3_under_many_scenarios() {
    let set = paper_example_with_best_effort(9).unwrap();
    let rep = analyze_ef(&set, &AnalysisConfig::default());
    let bounds: Vec<i64> = rep.bounds().into_iter().map(|b| b.unwrap()).collect();
    for victim in 0..5usize {
        for offset_scale in [0i64, 7, 18] {
            let sim = Simulator::new(
                &set,
                SimConfig {
                    scheduler: SchedulerKind::DiffServ,
                    tie_break: TieBreak::VictimLast(victim),
                    packets_per_flow: 24,
                    ..Default::default()
                },
            );
            let offsets: Vec<i64> = (0..set.len())
                .map(|i| (i as i64 * offset_scale) % 36)
                .collect();
            let out = sim.run_periodic(&offsets);
            for (s, b) in out.flows.iter().take(5).zip(&bounds) {
                assert!(
                    s.max_response <= *b,
                    "victim {victim} scale {offset_scale}: EF flow {} observed {} > {}",
                    s.flow,
                    s.max_response,
                    b
                );
            }
        }
    }
}

#[test]
fn ef_flows_unscathed_by_heavy_best_effort_load() {
    // Saturating BE load must not break EF guarantees (only the bounded
    // non-preemptive blocking remains).
    let network = Network::uniform(3, 1, 1).unwrap();
    let chain = Path::from_ids([1, 2, 3]).unwrap();
    let mut flows = vec![SporadicFlow::uniform(1, chain.clone(), 30, 2, 0, 60)
        .unwrap()
        .with_class(TrafficClass::Ef)];
    // BE flows at ~90% combined utilisation.
    for id in 2..=10u32 {
        flows.push(
            SporadicFlow::uniform(id, chain.clone(), 100, 10, 0, 1_000_000)
                .unwrap()
                .with_class(TrafficClass::BestEffort),
        );
    }
    let set = FlowSet::new(network, flows).unwrap();
    let rep = analyze_ef(&set, &AnalysisConfig::default());
    let bound = rep.per_flow()[0]
        .wcrt
        .value()
        .expect("EF must stay bounded");

    let sim = Simulator::new(
        &set,
        SimConfig {
            scheduler: SchedulerKind::DiffServ,
            packets_per_flow: 48,
            tie_break: TieBreak::VictimLast(0),
            ..Default::default()
        },
    );
    let out = sim.run_periodic(&vec![0; set.len()]);
    assert!(out.flows[0].delivered > 0);
    assert!(
        out.flows[0].max_response <= bound,
        "observed {} > bound {bound}",
        out.flows[0].max_response
    );
}

#[test]
fn admission_control_guarantees_hold_in_simulation() {
    // Admit sessions until full, then simulate the admitted set: every
    // admitted flow must meet its deadline in every tried scenario.
    let base = paper_example();
    let mut ac = AdmissionController::new(base, AnalysisConfig::default());
    let trunk = Path::from_ids([2, 3, 4]).unwrap();
    for id in 50..60u32 {
        let cand = SporadicFlow::uniform(id, trunk.clone(), 72, 4, 0, 70).unwrap();
        if let AdmissionDecision::Rejected { .. } = ac.try_admit(cand) {
            break;
        }
    }
    let set = ac.flows().clone();
    let rep = analyze_ef(&set, &AnalysisConfig::default());
    assert!(
        rep.all_schedulable(),
        "controller state must stay guaranteed"
    );

    let dom = DiffServDomain::new(set.clone());
    let out = dom.simulator(16).run_periodic(&vec![0; set.len()]);
    for (r, s) in rep.per_flow().iter().zip(&out.flows) {
        assert!(
            s.max_response <= r.deadline,
            "{}: {} > {}",
            r.name,
            s.max_response,
            r.deadline
        );
    }
}
