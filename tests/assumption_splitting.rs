//! Assumption 1 enforcement end-to-end: detect a leave-and-rejoin route,
//! split it per the paper's iteration, and analyse the resulting set.

use fifo_trajectory::analysis::{analyze_all, AnalysisConfig};
use fifo_trajectory::model::assumption::{enforce_assumption1, violations};
use fifo_trajectory::model::{FlowSet, Network, Path, SporadicFlow};

fn offending_set() -> FlowSet {
    // tau_1 runs 1->2->3->4; tau_2 touches node 1, detours via 8, 9 and
    // re-enters tau_1's path at node 3.
    let network = Network::uniform(9, 1, 2).unwrap();
    let flows = vec![
        SporadicFlow::uniform(1, Path::from_ids([1, 2, 3, 4]).unwrap(), 50, 4, 0, 200).unwrap(),
        SporadicFlow::uniform(2, Path::from_ids([1, 8, 9, 3, 4]).unwrap(), 60, 3, 0, 300).unwrap(),
    ];
    FlowSet::new(network, flows).unwrap()
}

#[test]
fn violation_is_detected() {
    let set = offending_set();
    let v = violations(&set);
    assert!(!v.is_empty());
    assert_eq!(v[0].offender, fifo_trajectory::model::FlowId(2));
    assert_eq!(v[0].against, fifo_trajectory::model::FlowId(1));
}

#[test]
fn analysis_after_splitting_is_well_defined() {
    let set = offending_set();
    let (fixed, splits) = enforce_assumption1(&set).unwrap();
    assert!(splits >= 1);
    assert!(violations(&fixed).is_empty());

    // Every split set remains analysable and bounded.
    let rep = analyze_all(&fixed, &AnalysisConfig::default());
    for r in rep.per_flow() {
        assert!(r.wcrt.is_bounded(), "{}: {:?}", r.name, r.wcrt);
    }

    // Path coverage is preserved: the union of the offender's segments
    // visits the original node sequence.
    let mut covered = Vec::new();
    for f in fixed
        .flows()
        .iter()
        .filter(|f| f.id.0 == 2 || f.id.0 >= 2000)
    {
        covered.extend(f.path.nodes().iter().map(|n| n.0));
    }
    assert_eq!(covered.len(), 5, "all five original hops survive the split");
}

#[test]
fn tail_inherits_transit_spread_as_jitter() {
    let set = offending_set();
    let (fixed, _) = enforce_assumption1(&set).unwrap();
    let tail = fixed
        .flows()
        .iter()
        .find(|f| f.name.contains("#tail"))
        .expect("a tail flow exists");
    // Head [1,8,9] has 2 links of spread (2-1) each.
    assert_eq!(tail.jitter, 2);
    // The tail keeps period and class.
    assert_eq!(tail.period, 60);
}

#[test]
fn multiple_offenders_converge() {
    // Two flows that each leave and re-join a shared trunk.
    let network = Network::uniform(12, 1, 1).unwrap();
    let flows = vec![
        SporadicFlow::uniform(1, Path::from_ids([1, 2, 3, 4, 5]).unwrap(), 80, 2, 0, 400).unwrap(),
        SporadicFlow::uniform(2, Path::from_ids([1, 10, 3, 4]).unwrap(), 80, 2, 0, 400).unwrap(),
        SporadicFlow::uniform(3, Path::from_ids([2, 11, 4, 5]).unwrap(), 80, 2, 0, 400).unwrap(),
    ];
    let set = FlowSet::new(network, flows).unwrap();
    let (fixed, splits) = enforce_assumption1(&set).unwrap();
    assert!(splits >= 2);
    assert!(violations(&fixed).is_empty());
    let rep = analyze_all(&fixed, &AnalysisConfig::default());
    assert!(rep.per_flow().iter().all(|r| r.wcrt.is_bounded()));
}
