//! Release-after-fault ordering suite.
//!
//! A fault storm evicts and drops flows *outside* the normal release
//! path, so the controller's bookkeeping must survive every ordering of
//! `on_fault` / `release` / `try_admit`:
//!
//! * releasing a flow the fault already removed is a clean
//!   [`ReleaseOutcome::NotFound`] — not a panic, not a corrupted order
//!   list;
//! * after any fault-then-release interleaving, the warm standing state
//!   must still be bit-identical to a cold `analyze_ef` of the admitted
//!   set, and the next admission decision must equal the one a
//!   cold-built controller makes on the same set.

use fifo_trajectory::analysis::AnalysisConfig;
use fifo_trajectory::diffserv::{AdmissionController, ReleaseOutcome};
use fifo_trajectory::model::gen::{random_mesh, MeshParams};
use fifo_trajectory::model::{FaultScenario, FlowId, NodeId, Path, SporadicFlow};
use proptest::prelude::*;

/// A short candidate over two adjacent mesh nodes, like the admission
/// suite uses.
fn candidate(id: u32, first_node: u32) -> SporadicFlow {
    SporadicFlow::uniform(
        id,
        Path::from_ids([first_node, first_node + 1]).expect("adjacent mesh nodes"),
        400,
        2,
        0,
        i64::MAX / 4,
    )
    .expect("valid candidate")
}

/// The warm state must agree with a cold re-analysis, integer for
/// integer, and the bookkeeping invariants must hold.
fn assert_warm_equals_cold(ac: &mut AdmissionController) -> Result<(), TestCaseError> {
    let violations = ac.check_invariants();
    prop_assert!(violations.is_empty(), "invariants violated: {violations:?}");
    if let Some(state) = ac.converged_state() {
        let audit = state.verify_bit_identity();
        prop_assert!(
            audit.passed(),
            "warm state diverged from cold for flows {:?}",
            audit.mismatches
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Fault, then release one of the fault's own casualties (already
    // gone), then release a survivor, then admit — warm must track
    // cold through the whole interleaving.
    #[test]
    fn fault_then_release_interleavings_match_cold(
        seed in 0u64..1_000_000,
        dead_node in 1u32..8,
        start in 1u32..6,
    ) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.65,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let cfg = AnalysisConfig::default();
        let mut ac = AdmissionController::new(set, cfg.clone());

        let storm = FaultScenario::node_down(NodeId(dead_node));
        let Ok(resp) = ac.on_fault(&storm, 0) else {
            // The fault would have killed every flow: state unchanged,
            // which the audit must confirm.
            return assert_warm_equals_cold(&mut ac);
        };
        assert_warm_equals_cold(&mut ac)?;

        // Casualties are no longer admitted: releasing one is NotFound
        // and must not disturb the state.
        for id in resp
            .dropped
            .iter()
            .map(|(id, _)| *id)
            .chain(resp.evicted.iter().copied())
        {
            prop_assert_eq!(ac.release(id), ReleaseOutcome::NotFound);
        }
        assert_warm_equals_cold(&mut ac)?;

        // Release one survivor (unless it is the last flow standing).
        let survivor = ac.flows().flows()[0].id;
        let outcome = ac.release(survivor);
        if ac.flows().len() > 1 {
            prop_assert_eq!(outcome, ReleaseOutcome::Released);
        }
        assert_warm_equals_cold(&mut ac)?;

        // The next admission decision must equal a cold controller's on
        // the same admitted set.
        let mut cold = AdmissionController::new(ac.flows().clone(), cfg);
        let cand = candidate(900, start);
        prop_assert_eq!(ac.try_admit(cand.clone()), cold.try_admit(cand));
        prop_assert_eq!(ac.flows().flows(), cold.flows().flows());
        assert_warm_equals_cold(&mut ac)?;
    }

    // Releasing ids that were never admitted — before or after a fault
    // — is always `NotFound` and leaves the controller usable.
    #[test]
    fn release_of_unknown_id_is_inert(
        seed in 0u64..1_000_000,
        bogus in 10_000u32..20_000,
        dead_node in 1u32..8,
    ) {
        let p = MeshParams {
            nodes: 8,
            flows: 5,
            max_utilisation: 0.6,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let mut ac = AdmissionController::new(set, AnalysisConfig::default());

        prop_assert_eq!(ac.release(FlowId(bogus)), ReleaseOutcome::NotFound);
        let _ = ac.on_fault(&FaultScenario::node_down(NodeId(dead_node)), 0);
        prop_assert_eq!(ac.release(FlowId(bogus)), ReleaseOutcome::NotFound);
        assert_warm_equals_cold(&mut ac)?;
    }
}
