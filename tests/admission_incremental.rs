//! Differential suite for incremental warm-start admission analysis.
//!
//! [`analyze_ef_incremental`] / [`ConvergedState::extend`] / `remove`
//! must produce EF bounds bit-identical to a cold [`analyze_ef`] of the
//! same set — not just for one extension, but across whole
//! admit/release/re-admit *sequences*, where the standing state has
//! itself been produced incrementally. Verified on random meshes under
//! both `SmaxMode`s and all three `MinConvention`s, and on the paper
//! example across the full configuration grid.

use fifo_trajectory::analysis::{
    analyze_ef, analyze_ef_incremental, config_grid, AnalysisConfig, ConvergedState, SetReport,
    SmaxMode,
};
use fifo_trajectory::model::examples::paper_example;
use fifo_trajectory::model::gen::{random_mesh, MeshParams};
use fifo_trajectory::model::{FlowId, FlowSet, MinConvention, Path, SporadicFlow};
use proptest::prelude::*;

/// Both `SmaxMode`s crossed with all three `MinConvention`s, defaults
/// elsewhere — the knobs the incremental path actually branches on.
fn admission_configs() -> Vec<AnalysisConfig> {
    let mut out = Vec::new();
    for smax_mode in [SmaxMode::RecursivePrefix, SmaxMode::TransitOnly] {
        for min_convention in [
            MinConvention::Visiting,
            MinConvention::ZeroConvention,
            MinConvention::EdgeTraversing,
        ] {
            out.push(AnalysisConfig {
                smax_mode,
                min_convention,
                ..Default::default()
            });
        }
    }
    out
}

/// A short EF candidate over two adjacent mesh nodes — localised
/// interference, the shape the warm path is optimised for.
fn candidate(id: u32, first_node: u32) -> SporadicFlow {
    SporadicFlow::uniform(
        id,
        Path::from_ids([first_node, first_node + 1]).expect("adjacent mesh nodes"),
        400,
        2,
        0,
        i64::MAX / 4,
    )
    .expect("valid candidate")
}

fn assert_reports_identical(
    warm: &SetReport,
    cold: &SetReport,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        warm.per_flow().len(),
        cold.per_flow().len(),
        "flow count diverged: {}",
        context
    );
    for (a, b) in warm.per_flow().iter().zip(cold.per_flow()) {
        prop_assert_eq!(&a.wcrt, &b.wcrt, "wcrt diverged: {}", context);
        prop_assert_eq!(&a.jitter, &b.jitter, "jitter diverged: {}", context);
    }
    Ok(())
}

/// One admit → admit → release → re-admit sequence under one config,
/// every step compared bit-for-bit against a cold analysis of the set
/// the incremental state claims to represent.
fn run_sequence(set: &FlowSet, cfg: &AnalysisConfig, start: u32) -> Result<(), TestCaseError> {
    let Ok(standing) = ConvergedState::build_ef(set, cfg) else {
        // No standing fixed point to warm-start from.
        return Ok(());
    };

    // Admit A via the free-function entry point.
    let a = candidate(901, start);
    let whatif_a = analyze_ef_incremental(&standing, a.clone()).expect("structurally valid");
    let ext_a = set.extended_with(a).expect("valid extension");
    assert_reports_identical(&whatif_a.report, &analyze_ef(&ext_a, cfg), "admit A")?;
    let Some(state_a) = whatif_a.into_state() else {
        return Ok(());
    };

    // Admit B on top of the incrementally-built state.
    let b = candidate(902, start + 1);
    let whatif_b = state_a.extend(b.clone()).expect("structurally valid");
    let ext_ab = ext_a.extended_with(b).expect("valid extension");
    assert_reports_identical(&whatif_b.report, &analyze_ef(&ext_ab, cfg), "admit B")?;
    let Some(state_ab) = whatif_b.into_state() else {
        return Ok(());
    };

    // Release A: the shrunk state must match a cold analysis of the
    // shrunk set.
    let Some(state_b) = state_ab.remove(FlowId(901)) else {
        return Ok(());
    };
    let set_b = ext_ab.without_flow(FlowId(901)).expect("valid removal");
    assert_reports_identical(state_b.report(), &analyze_ef(&set_b, cfg), "release A")?;

    // Re-admit a twin of A into the freed slot: the state under test
    // has now been through extend → extend → remove.
    let a2 = candidate(903, start);
    let whatif_a2 = state_b.extend(a2.clone()).expect("structurally valid");
    let ext_re = set_b.extended_with(a2).expect("valid extension");
    assert_reports_identical(&whatif_a2.report, &analyze_ef(&ext_re, cfg), "re-admit A")?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn admit_release_readmit_matches_cold_on_random_meshes(
        seed in 0u64..1_000_000,
        start in 1u32..6,
    ) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.65,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        for cfg in admission_configs() {
            run_sequence(&set, &cfg, start)?;
        }
    }

    #[test]
    fn dirty_closure_never_understates_recomputation(
        seed in 0u64..1_000_000,
        start in 1u32..6,
    ) {
        // Every flow outside the reported dirty closure must hold its
        // standing verdict verbatim — the reuse the closure licenses.
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.65,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let cfg = AnalysisConfig::default();
        let Ok(standing) = ConvergedState::build_ef(&set, &cfg) else {
            return Ok(());
        };
        let whatif = standing
            .extend(candidate(901, start))
            .expect("structurally valid");
        prop_assert_eq!(whatif.stale.len(), set.len() + 1);
        prop_assert!(whatif.stale[set.len()], "the candidate is always stale");
        prop_assert_eq!(whatif.recomputed() + whatif.reused(), set.len() + 1);
        for (i, stale) in whatif.stale.iter().enumerate().take(set.len()) {
            if !*stale {
                let a = &standing.report().per_flow()[i];
                let b = &whatif.report.per_flow()[i];
                prop_assert_eq!(&a.wcrt, &b.wcrt, "reused flow moved");
                prop_assert_eq!(&a.jitter, &b.jitter, "reused flow moved");
            }
        }
    }
}

#[test]
fn paper_example_sequence_matches_cold_everywhere() {
    let set = paper_example();
    for cfg in config_grid() {
        run_sequence(&set, &cfg, 1).unwrap();
    }
}
