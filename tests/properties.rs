//! Property-based tests (proptest) on the core invariants:
//!
//! * integer-arithmetic laws used by the bound formulas;
//! * monotonicity of the trajectory bound in the workload parameters;
//! * soundness of the bound against simulation on random small sets;
//! * structural invariants of path relations.

use fifo_trajectory::analysis::{analyze_all, AnalysisConfig};
use fifo_trajectory::model::gen::{random_mesh, MeshParams};
use fifo_trajectory::model::{
    ceil_div, floor_div, plus_one_floor, FlowSet, Network, Path, SporadicFlow,
};
use fifo_trajectory::sim::{SimConfig, Simulator, TieBreak};
use proptest::prelude::*;

proptest! {
    #[test]
    fn floor_ceil_duality(a in -10_000i64..10_000, b in 1i64..500) {
        prop_assert_eq!(ceil_div(a, b), -floor_div(-a, b));
        prop_assert!(floor_div(a, b) * b <= a);
        prop_assert!(ceil_div(a, b) * b >= a);
        prop_assert!(ceil_div(a, b) - floor_div(a, b) <= 1);
    }

    #[test]
    fn packet_count_window_laws(a in -1_000i64..10_000, t in 1i64..1_000) {
        let n = plus_one_floor(a, t);
        prop_assert!(n >= 0);
        // n packets of a sporadic flow of period t need a window of at
        // least (n-1)*t.
        if n > 0 {
            prop_assert!(a >= (n - 1) * t);
            prop_assert!(a < n * t);
        } else {
            prop_assert!(a < 0);
        }
        // Monotone in the window, sub-additive across splits.
        prop_assert!(plus_one_floor(a + 1, t) >= n);
        let b = 137i64;
        prop_assert!(plus_one_floor(a + b, t) <= n + plus_one_floor(b, t));
    }

    #[test]
    fn path_relations_are_consistent(ids in proptest::collection::vec(1u32..30, 2..8)) {
        let mut uniq = ids.clone();
        uniq.dedup();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assume!(uniq.len() >= 2);
        let path = Path::new(uniq.iter().map(|&v| fifo_trajectory::model::NodeId(v)).collect()).unwrap();
        // pre/suc are inverses along the chain.
        for &n in path.nodes() {
            if let Some(p) = path.pre(n) {
                prop_assert_eq!(path.suc(p), Some(n));
            }
            if let Some(s) = path.suc(n) {
                prop_assert_eq!(path.pre(s), Some(n));
            }
        }
        prop_assert_eq!(path.pre(path.first()), None);
        prop_assert_eq!(path.suc(path.last()), None);
    }

    #[test]
    fn bound_is_monotone_in_cost(cost in 1i64..10, extra in 1i64..5) {
        let net = Network::uniform(3, 1, 1).unwrap();
        let mk = |c: i64| {
            let flows = vec![
                SporadicFlow::uniform(1, Path::from_ids([1, 2, 3]).unwrap(), 100, c, 0, 10_000).unwrap(),
                SporadicFlow::uniform(2, Path::from_ids([2, 3]).unwrap(), 90, 3, 0, 10_000).unwrap(),
            ];
            FlowSet::new(net.clone(), flows).unwrap()
        };
        let cfg = AnalysisConfig::default();
        let lo = analyze_all(&mk(cost), &cfg).bounds()[1].unwrap();
        let hi = analyze_all(&mk(cost + extra), &cfg).bounds()[1].unwrap();
        prop_assert!(hi >= lo, "increasing a rival's cost shrank the bound: {hi} < {lo}");
    }

    #[test]
    fn bound_is_monotone_in_rate(period in 30i64..200, shrink in 1i64..20) {
        // Decreasing a rival's period (more packets) cannot shrink the bound.
        let net = Network::uniform(2, 1, 1).unwrap();
        let mk = |t: i64| {
            let flows = vec![
                SporadicFlow::uniform(1, Path::from_ids([1, 2]).unwrap(), 100, 4, 0, 10_000).unwrap(),
                SporadicFlow::uniform(2, Path::from_ids([1, 2]).unwrap(), t, 4, 0, 10_000).unwrap(),
            ];
            FlowSet::new(net.clone(), flows).unwrap()
        };
        let cfg = AnalysisConfig::default();
        let slow = analyze_all(&mk(period + shrink), &cfg).bounds()[0].unwrap();
        let fast = analyze_all(&mk(period), &cfg).bounds()[0].unwrap();
        prop_assert!(fast >= slow);
    }

    #[test]
    fn trajectory_bound_sound_against_random_sims(
        seed in 0u64..500,
        offsets_seed in 0u64..1000,
    ) {
        let set = random_mesh(seed, &MeshParams {
            flows: 4, nodes: 5, max_utilisation: 0.6,
            path_len: (1, 4), ..Default::default()
        }).unwrap();
        let rep = analyze_all(&set, &AnalysisConfig::default());
        let sim = Simulator::new(&set, SimConfig {
            packets_per_flow: 8,
            tie_break: TieBreak::Seeded(offsets_seed),
            ..Default::default()
        });
        let max_t = set.flows().iter().map(|f| f.period).max().unwrap();
        let offsets: Vec<i64> = (0..set.len())
            .map(|i| ((offsets_seed as i64).wrapping_mul(31).wrapping_add(i as i64 * 17)).rem_euclid(max_t))
            .collect();
        let out = sim.run_periodic(&offsets);
        for (s, b) in out.flows.iter().zip(rep.bounds()) {
            if let Some(b) = b {
                prop_assert!(
                    s.max_response <= b,
                    "seed {} offsets {:?}: flow {} observed {} > bound {}",
                    seed, offsets, s.flow, s.max_response, b
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn crossing_segments_partition_shared_nodes(
        owner_ids in proptest::collection::vec(1u32..12, 2..6),
        crosser_ids in proptest::collection::vec(1u32..12, 2..6),
    ) {
        use std::collections::HashSet;
        let dedup = |v: &[u32]| -> Vec<u32> {
            let mut seen = HashSet::new();
            v.iter().copied().filter(|x| seen.insert(*x)).collect()
        };
        let o = dedup(&owner_ids);
        let c = dedup(&crosser_ids);
        prop_assume!(o.len() >= 2 && c.len() >= 2);
        let net = Network::uniform(12, 1, 1).unwrap();
        let fo = SporadicFlow::uniform(1, Path::from_ids(o.clone()).unwrap(), 50, 2, 0, 900).unwrap();
        let fc = SporadicFlow::uniform(2, Path::from_ids(c.clone()).unwrap(), 50, 2, 0, 900).unwrap();
        let set = FlowSet::new(net, vec![fo, fc]).unwrap();
        let path = set.flows()[0].path.clone();
        let crosser = set.flows()[1].clone();
        let segs = set.crossing_segments(&crosser, &path);
        // 1. Segments partition the shared nodes, preserving crosser order.
        let flat: Vec<_> = segs.iter().flat_map(|s| s.nodes.iter().copied()).collect();
        prop_assert_eq!(flat, set.shared_nodes(&crosser, &path));
        // 2. Within a segment, nodes are adjacent in both paths.
        for seg in &segs {
            for w in seg.nodes.windows(2) {
                let ci = crosser.path.index_of(w[0]).unwrap();
                let cj = crosser.path.index_of(w[1]).unwrap();
                prop_assert_eq!(cj, ci + 1);
                let pi = path.index_of(w[0]).unwrap() as i64;
                let pj = path.index_of(w[1]).unwrap() as i64;
                prop_assert_eq!((pj - pi).abs(), 1);
            }
        }
        // 3. Compliant (single-segment or no) crossings match the
        //    Assumption 1 checker.
        use fifo_trajectory::model::assumption::first_reentry;
        let compliant = first_reentry(&set.flows()[0], &crosser).is_none();
        prop_assert_eq!(compliant, segs.len() <= 1,
            "checker and segmentation disagree: {} segments", segs.len());
    }

    #[test]
    fn staircase_dominated_by_affine(
        c in 1i64..10, t in 10i64..100, j in 0i64..20, n in 1usize..5,
    ) {
        use fifo_trajectory::netcalc::{staircase_delay_bound, Staircase};
        let curves = vec![Staircase::new(c, t, j); n];
        prop_assume!((c * n as i64) < t); // keep utilisation < 1
        let exact = staircase_delay_bound(&curves, 1 << 30).unwrap();
        // Affine sigma_tot = n * (c + c*j/t); delay through rate-1 server.
        let affine_sigma = n as f64 * (c as f64 + c as f64 * j as f64 / t as f64);
        prop_assert!(exact as f64 <= affine_sigma.ceil() + 1e-9);
        prop_assert!(exact >= c * n as i64, "at least one packet per flow");
    }

    #[test]
    fn ef_delta_monotone_in_blocker(c1 in 2i64..20, extra in 1i64..20) {
        use fifo_trajectory::analysis::nonpreemption_delta;
        use fifo_trajectory::model::examples::paper_example_with_best_effort;
        let small = paper_example_with_best_effort(c1).unwrap();
        let large = paper_example_with_best_effort(c1 + extra).unwrap();
        for (fs, fl) in small.ef_flows().zip(large.ef_flows()) {
            let ds = nonpreemption_delta(&small, fs, &fs.path);
            let dl = nonpreemption_delta(&large, fl, &fl.path);
            prop_assert!(dl >= ds);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rational_field_laws(
        an in -500i128..500, ad in 1i128..40,
        bn in -500i128..500, bd in 1i128..40,
        cn in -500i128..500, cd in 1i128..40,
    ) {
        use fifo_trajectory::netcalc::Ratio;
        let a = Ratio::new(an, ad);
        let b = Ratio::new(bn, bd);
        let c = Ratio::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Ratio::ZERO);
        if b != Ratio::ZERO {
            prop_assert_eq!((a / b) * b, a);
        }
        // floor/ceil consistency
        prop_assert!(Ratio::int(a.floor()) <= a);
        prop_assert!(Ratio::int(a.ceil()) >= a);
    }
}
