//! Cross-analysis invariants on randomised workloads:
//!
//! * every analytical bound dominates the adversarial simulation;
//! * on structured same-direction workloads (shared lines, parking lots)
//!   the trajectory bound dominates the holistic one — the paper's claim;
//! * all bounds dominate the uncontended floor;
//! * divergence verdicts are consistent across analyses.

use fifo_trajectory::analysis::{analyze_all, AnalysisConfig};
use fifo_trajectory::holistic::{analyze_holistic, HolisticConfig};
use fifo_trajectory::model::gen::{parking_lot, random_mesh, MeshParams};
use fifo_trajectory::model::{examples::line_topology, FlowSet};
use fifo_trajectory::netcalc::analyze_netcalc;
use fifo_trajectory::sim::{validate_bounds, AdversaryParams};

fn check_set(set: &FlowSet, label: &str, expect_trajectory_dominates: bool) {
    let cfg = AnalysisConfig::default();
    let traj = analyze_all(set, &cfg);
    let hol = analyze_holistic(set, &HolisticConfig::default());

    for (f, (t, h)) in set
        .flows()
        .iter()
        .zip(traj.bounds().iter().zip(hol.bounds()))
    {
        // Floor: nothing beats uncontended transit.
        let floor: i64 = f.total_cost()
            + f.path
                .links()
                .map(|(a, b)| set.network().link_delay(a, b).lmin)
                .sum::<i64>();
        if let Some(t) = t {
            assert!(*t >= floor, "{label}: trajectory below floor for {}", f.id);
        }
        // On multi-hop same-direction workloads the trajectory bound
        // dominates (that is the paper's claim); on arbitrary meshes with
        // release jitter neither method dominates the other pointwise, so
        // the check is opt-in per workload family.
        if expect_trajectory_dominates {
            if let (Some(t), Some(h)) = (t, h) {
                assert!(
                    h >= *t,
                    "{label}: holistic {h} < trajectory {t} for flow {}",
                    f.id
                );
            }
        }
    }

    // Simulation soundness.
    let rows = validate_bounds(
        set,
        &traj.bounds(),
        &AdversaryParams {
            trials: 25,
            ..Default::default()
        },
    );
    for r in rows {
        assert!(
            r.sound,
            "{label}: flow {} observed {} > bound {:?}",
            r.flow, r.observed, r.bound
        );
    }
}

#[test]
fn random_meshes() {
    for seed in 0..8u64 {
        let set = random_mesh(
            seed,
            &MeshParams {
                flows: 6,
                nodes: 8,
                max_utilisation: 0.55,
                ..Default::default()
            },
        )
        .unwrap();
        check_set(&set, &format!("mesh seed {seed}"), false);
    }
}

#[test]
fn parking_lots() {
    for seed in [3u64, 9] {
        for trunk in [3u32, 6] {
            let set = parking_lot(seed, 4, trunk, 150, 4).unwrap();
            check_set(&set, &format!("parking lot {seed}/{trunk}"), true);
        }
    }
}

#[test]
fn shared_lines_across_utilisations() {
    for n in [2u32, 5, 10] {
        let set = line_topology(n, 4, 120, 4, 1, 2).unwrap();
        check_set(&set, &format!("line with {n} flows"), true);
    }
}

#[test]
fn bidirectional_lines_reverse_crossing_soundness() {
    // Reverse-direction crossings drive the trickiest part of the
    // A_{i,j} accounting; validate it against the adversary on
    // bidirectional lines of several depths.
    use fifo_trajectory::model::gen::bidirectional_line;
    for len in [2u32, 3, 5] {
        let set = bidirectional_line(2, 2, len, 90, 4).unwrap();
        check_set(&set, &format!("bidi line len {len}"), false);
    }
}

#[test]
fn star_single_node_crossings() {
    use fifo_trajectory::model::gen::star;
    let set = star(5, 80, 4).unwrap();
    check_set(&set, "star 5 arms", true);
}

#[test]
fn leave_and_rejoin_routes_are_bounded_soundly() {
    // Regression for the segment-accounting fix: a flow that leaves the
    // victim's path and re-enters later interferes once per crossing
    // segment; the original per-flow accounting under-counted it (mesh
    // seed 7 produced observed 57 > bound 53).
    let set = random_mesh(
        7,
        &MeshParams {
            flows: 6,
            nodes: 8,
            max_utilisation: 0.55,
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = AnalysisConfig::default();
    let traj = analyze_all(&set, &cfg);
    let rows = validate_bounds(
        &set,
        &traj.bounds(),
        &AdversaryParams {
            trials: 60,
            ..Default::default()
        },
    );
    for r in &rows {
        assert!(
            r.sound,
            "flow {}: observed {} > bound {:?}",
            r.flow, r.observed, r.bound
        );
    }
    // The specific victim (flow id 4) must now be covered with margin.
    let idx3 = rows.iter().position(|r| r.flow.0 == 4).unwrap();
    assert!(rows[idx3].bound.unwrap() >= 57);
}

#[test]
fn netcalc_agrees_on_divergence_direction() {
    // Where netcalc produces a bound, trajectory must too (netcalc's
    // stability condition is at least as strict on these workloads).
    for seed in 0..5u64 {
        let set = random_mesh(
            seed,
            &MeshParams {
                flows: 5,
                nodes: 7,
                max_utilisation: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let nc = analyze_netcalc(&set);
        let traj = analyze_all(&set, &AnalysisConfig::default());
        for (n, t) in nc.iter().zip(traj.bounds()) {
            if n.total.is_some() {
                assert!(t.is_some(), "trajectory diverged where netcalc did not");
            }
        }
    }
}

#[test]
fn observed_backlog_within_staircase_bound() {
    // On a shared single node the exact staircase aggregate bounds both
    // the delay and the backlog (unit-rate server: the two coincide);
    // the simulator's observed peak backlog must stay below it.
    use fifo_trajectory::netcalc::{staircase_delay_bound, Staircase};
    use fifo_trajectory::sim::{SimConfig, Simulator};
    for (n, c, t) in [(3u32, 7i64, 100i64), (5, 4, 60), (2, 9, 40)] {
        let set = line_topology(n, 1, t, c, 1, 1).unwrap();
        let curves: Vec<Staircase> = set.flows().iter().map(Staircase::of_flow).collect();
        let bound = staircase_delay_bound(&curves, 1 << 30).unwrap();
        let out = Simulator::new(&set, SimConfig::default()).run_periodic(&vec![0; n as usize]);
        let observed = out.max_backlog.get(&1).copied().unwrap_or(0);
        assert!(
            observed <= bound,
            "{n} flows: backlog {observed} > staircase bound {bound}"
        );
    }
}

#[test]
fn jittered_release_patterns_respect_bounds() {
    use fifo_trajectory::sim::{ReleasePattern, SimConfig, Simulator};
    // Flows *with* release jitter, exercised with jittered sources.
    let set = random_mesh(
        11,
        &MeshParams {
            flows: 5,
            nodes: 6,
            jitter: (2, 6),
            max_utilisation: 0.5,
            ..Default::default()
        },
    )
    .unwrap();
    let traj = analyze_all(&set, &AnalysisConfig::default());
    let sim = Simulator::new(&set, SimConfig::default());
    for seed in 0..10u64 {
        let patterns: Vec<ReleasePattern> = (0..set.len())
            .map(|i| ReleasePattern::JitteredPeriodic {
                offset: (seed as i64 * 7 + i as i64 * 13) % 50,
                seed: seed * 100 + i as u64,
            })
            .collect();
        let out = sim.run(&patterns);
        for (s, b) in out.flows.iter().zip(traj.bounds()) {
            assert!(
                s.max_response <= b.unwrap(),
                "jittered run {seed}: flow {} observed {} > {:?}",
                s.flow,
                s.max_response,
                b
            );
        }
    }
}
