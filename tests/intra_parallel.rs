//! Differential suite for the intra-component parallel fixed point.
//!
//! [`IntraParallel::Always`] forces every shard solve through the
//! parallel Jacobi path — double-buffered rows, the dirty-cell
//! worklist, and the arena-index-order merge — regardless of the
//! cell-count threshold or the worker-pool width. Its results must be
//! bit-identical to the serial sharded solver ([`IntraParallel::Never`])
//! and to the monolithic loop on the same set: same `Smax` tables, same
//! verdicts, same failure classifications. The contract covers cold
//! analysis, degraded topologies and the warm re-analysis /
//! admit-release-readmit paths, where the worklist is seeded from the
//! standing fixed point instead of starting full.
//!
//! The explicit `FixpointStrategy::Jacobi` everywhere is load-bearing:
//! `Auto` resolves to Gauss–Seidel for cold single-threaded runs, which
//! would silently bypass the code under test.

use fifo_trajectory::analysis::{
    analyze_all, analyze_degraded, analyze_ef, config_grid, reanalyze, AnalysisConfig, Analyzer,
    ConvergedState, FixpointStrategy, IntraParallel, ShardMode,
};
use fifo_trajectory::diffserv::{AdmissionController, AdmissionDecision, ReleaseOutcome};
use fifo_trajectory::model::gen::{fat_tree, random_mesh, FatTreeParams, MeshParams};
use fifo_trajectory::model::{FaultScenario, FlowSet, SporadicFlow};
use proptest::prelude::*;

fn with_parallelism(base: &AnalysisConfig, intra: IntraParallel) -> AnalysisConfig {
    AnalysisConfig {
        fixpoint: FixpointStrategy::Jacobi,
        shard_mode: ShardMode::Components,
        intra_parallel: intra,
        ..base.clone()
    }
}

/// Forced-parallel vs serial sharded vs monolithic on one set: `Smax`
/// tables and verdicts must agree bit-for-bit, including which engines
/// fail and how.
fn assert_parallel_agrees(set: &FlowSet, base: &AnalysisConfig) -> Result<(), TestCaseError> {
    let par_cfg = with_parallelism(base, IntraParallel::Always);
    let ser_cfg = with_parallelism(base, IntraParallel::Never);
    match (Analyzer::new(set, &par_cfg), Analyzer::new(set, &ser_cfg)) {
        (Ok(p), Ok(s)) => {
            prop_assert_eq!(
                p.smax().values(),
                s.smax().values(),
                "Smax tables diverged between forced-parallel and serial"
            );
            for i in 0..set.len() {
                prop_assert_eq!(p.wcrt(i), s.wcrt(i), "wcrt diverged for flow {}", i);
            }
        }
        (Err(pv), Err(sv)) => {
            prop_assert_eq!(pv, sv, "failure verdicts diverged");
        }
        (p, s) => {
            return Err(TestCaseError::fail(format!(
                "engines disagree on success: parallel {:?}, serial {:?}",
                p.map(|_| ()),
                s.map(|_| ())
            )));
        }
    }
    let mono_cfg = AnalysisConfig {
        fixpoint: FixpointStrategy::Jacobi,
        shard_mode: ShardMode::Monolithic,
        ..base.clone()
    };
    prop_assert_eq!(
        analyze_all(set, &par_cfg).bounds(),
        analyze_all(set, &mono_cfg).bounds(),
        "forced-parallel sharded bounds diverged from the monolithic loop"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn forced_parallel_matches_serial_and_monolithic_on_random_meshes(
        seed in 0u64..1_000_000,
    ) {
        let p = MeshParams {
            nodes: 10,
            flows: 12,
            max_utilisation: 0.8,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        for base in config_grid() {
            assert_parallel_agrees(&set, &base)?;
        }
    }

    #[test]
    fn forced_parallel_matches_on_fat_trees_across_localities(
        seed in 0u64..1_000_000,
        locality_pick in 0usize..3,
    ) {
        // locality 1.0: many pod-local components (many small shards);
        // 0.0: one giant component (a single arena doing all the work).
        let p = FatTreeParams {
            pods: 3,
            flows: 24,
            locality: [1.0, 0.5, 0.0][locality_pick],
            ..Default::default()
        };
        let set = fat_tree(seed, &p).unwrap();
        assert_parallel_agrees(&set, &AnalysisConfig::default())?;
    }

    #[test]
    fn forced_parallel_matches_on_degraded_topologies_and_warm_reanalysis(
        seed in 0u64..1_000_000,
        fault_pick in 0usize..32,
    ) {
        let p = FatTreeParams {
            pods: 3,
            flows: 18,
            locality: 0.8,
            ..Default::default()
        };
        let set = fat_tree(seed, &p).unwrap();
        let nodes = set.network().nodes().to_vec();
        let scenario = FaultScenario::node_down(nodes[fault_pick % nodes.len()]);
        let Ok(degraded) = scenario.apply(&set) else {
            return Ok(());
        };
        let base = AnalysisConfig::default();
        let par_cfg = with_parallelism(&base, IntraParallel::Always);
        let ser_cfg = with_parallelism(&base, IntraParallel::Never);
        // Cold degraded analysis, forced-parallel vs serial.
        let cold_par = analyze_degraded(&degraded, &par_cfg);
        let cold_ser = analyze_degraded(&degraded, &ser_cfg);
        for (a, b) in cold_par.per_flow().iter().zip(cold_ser.per_flow()) {
            prop_assert_eq!(&a.wcrt, &b.wcrt, "degraded wcrt diverged");
            prop_assert_eq!(&a.jitter, &b.jitter, "degraded jitter diverged");
        }
        // Warm re-analysis under forced parallelism: the seeded worklist
        // must land on the same fixed point the cold serial run reaches.
        if let Ok(healthy) = Analyzer::new(&set, &par_cfg) {
            let re = reanalyze(&healthy, &degraded, &par_cfg);
            for (a, b) in re.report.per_flow().iter().zip(cold_ser.per_flow()) {
                prop_assert_eq!(&a.wcrt, &b.wcrt, "warm parallel wcrt diverged");
                prop_assert_eq!(&a.jitter, &b.jitter, "warm parallel jitter diverged");
            }
        }
    }

    #[test]
    fn forced_parallel_warm_admission_matches_cold(seed in 0u64..1_000_000) {
        let p = FatTreeParams {
            pods: 3,
            flows: 24,
            locality: 1.0,
            ..Default::default()
        };
        let set = fat_tree(seed, &p).unwrap();
        let cfg = with_parallelism(&AnalysisConfig::default(), IntraParallel::Always);
        let Ok(standing) = ConvergedState::build_ef(&set, &cfg) else {
            return Ok(());
        };
        let proto = &set.flows()[0];
        let cand = SporadicFlow::uniform(
            90_000,
            proto.path.clone(),
            2 * proto.period,
            proto.costs()[0],
            0,
            i64::MAX / 4,
        )
        .unwrap();
        let Ok(extended) = set.extended_with(cand.clone()) else {
            return Ok(());
        };
        let warm = standing.extend(cand).unwrap();
        let cold = analyze_ef(&extended, &cfg);
        for (a, b) in warm.report.per_flow().iter().zip(cold.per_flow()) {
            prop_assert_eq!(&a.wcrt, &b.wcrt, "warm admission wcrt diverged");
            prop_assert_eq!(&a.jitter, &b.jitter, "warm admission jitter diverged");
        }
    }
}

/// Regression: the dirty-row worklist carried across warm solves must
/// not leak state between an admit, the matching release, and a
/// re-admit of the same flow. Each step's warm bounds are pinned
/// against a cold analysis of the then-current set, under forced
/// parallelism so the worklist path is the one being exercised.
#[test]
fn worklist_state_survives_admit_release_readmit_cycles() {
    let p = FatTreeParams {
        pods: 3,
        flows: 24,
        locality: 1.0,
        ..Default::default()
    };
    let set = fat_tree(0xAD417, &p).unwrap();
    let cfg = with_parallelism(&AnalysisConfig::default(), IntraParallel::Always);
    let mut ac = AdmissionController::new(set.clone(), cfg.clone());

    let proto = &set.flows()[0];
    let cand = SporadicFlow::uniform(
        90_000,
        proto.path.clone(),
        2 * proto.period,
        proto.costs()[0],
        0,
        i64::MAX / 4,
    )
    .unwrap();
    let extended = set.extended_with(cand.clone()).unwrap();
    let cold_base = analyze_ef(&set, &cfg);
    let cold_extended = analyze_ef(&extended, &cfg);

    let pin = |state: &ConvergedState, oracle: &fifo_trajectory::analysis::SetReport, tag: &str| {
        let report = state.report();
        assert_eq!(report.per_flow().len(), oracle.per_flow().len(), "{tag}");
        for (a, b) in report.per_flow().iter().zip(oracle.per_flow()) {
            assert_eq!(a.wcrt, b.wcrt, "{tag}: wcrt diverged for {}", a.name);
            assert_eq!(a.jitter, b.jitter, "{tag}: jitter diverged for {}", a.name);
        }
    };

    for round in 0..3 {
        let d = ac.try_admit(cand.clone());
        assert!(
            matches!(d, AdmissionDecision::Admitted { .. }),
            "round {round}: candidate must admit, got {d:?}"
        );
        pin(
            ac.converged_state().expect("standing state after admit"),
            &cold_extended,
            &format!("round {round} after admit"),
        );
        assert_eq!(
            ac.release(cand.id),
            ReleaseOutcome::Released,
            "round {round}: release must succeed"
        );
        pin(
            ac.converged_state().expect("standing state after release"),
            &cold_base,
            &format!("round {round} after release"),
        );
    }
}
