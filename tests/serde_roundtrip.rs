//! Serialisation round-trips: flow sets, configurations and reports are
//! stable JSON artifacts (used by downstream tooling and the bench
//! harness).

use fifo_trajectory::analysis::{analyze_all, AnalysisConfig, SetReport};
use fifo_trajectory::model::examples::{paper_example, paper_example_with_best_effort};
use fifo_trajectory::model::FlowSet;

#[test]
fn flow_set_roundtrip() {
    let set = paper_example();
    let json = serde_json::to_string_pretty(&set).unwrap();
    let back: FlowSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), set.len());
    for (a, b) in set.flows().iter().zip(back.flows()) {
        assert_eq!(a, b);
    }
    assert_eq!(back.network().lmax(), set.network().lmax());
}

#[test]
fn flow_set_with_classes_roundtrip() {
    let set = paper_example_with_best_effort(9).unwrap();
    let json = serde_json::to_string(&set).unwrap();
    let back: FlowSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back.ef_flows().count(), 5);
    assert_eq!(back.non_ef_flows().count(), 5);
}

#[test]
fn report_roundtrip_preserves_verdicts() {
    let set = paper_example();
    let rep = analyze_all(&set, &AnalysisConfig::default());
    let json = serde_json::to_string(&rep).unwrap();
    let back: SetReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.bounds(), rep.bounds());
    assert_eq!(back.all_schedulable(), rep.all_schedulable());
}

#[test]
fn config_roundtrip() {
    for cfg in [
        AnalysisConfig::default(),
        AnalysisConfig::paper_calibrated(),
    ] {
        let json = serde_json::to_string(&cfg).unwrap();
        let back: AnalysisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reverse_counting, cfg.reverse_counting);
        assert_eq!(back.smax_mode, cfg.smax_mode);
        assert_eq!(back.min_convention, cfg.min_convention);
    }
}

#[test]
fn analysis_of_deserialised_set_matches_original() {
    // The serialised artifact is analysis-equivalent, not merely
    // structurally equal.
    let set = paper_example();
    let back: FlowSet = serde_json::from_str(&serde_json::to_string(&set).unwrap()).unwrap();
    let cfg = AnalysisConfig::default();
    assert_eq!(
        analyze_all(&set, &cfg).bounds(),
        analyze_all(&back, &cfg).bounds()
    );
}
