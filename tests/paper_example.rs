//! Integration test for E1/E2: the complete Table 1 / Table 2 pipeline,
//! cross-checking every analysis and the published rows.

use fifo_trajectory::analysis::{analyze_all, analyze_ef, jitter_bound, AnalysisConfig};
use fifo_trajectory::holistic::{analyze_holistic, HolisticConfig};
use fifo_trajectory::model::examples::{
    paper_example, PAPER_TABLE1_DEADLINES, PAPER_TABLE2_HOLISTIC, PAPER_TABLE2_TRAJECTORY,
};
use fifo_trajectory::netcalc::analyze_netcalc;

#[test]
fn table1_inputs() {
    let set = paper_example();
    for (f, d) in set.flows().iter().zip(PAPER_TABLE1_DEADLINES) {
        assert_eq!(f.deadline, d);
        assert_eq!(f.period, 36);
        assert_eq!(f.jitter, 0);
        assert!(f.costs().iter().all(|&c| c == 4));
    }
}

#[test]
fn table2_trajectory_row() {
    // Faithful Property 2 bounds (see EXPERIMENTS.md for the relation to
    // the published row).
    let set = paper_example();
    let rep = analyze_all(&set, &AnalysisConfig::default());
    assert_eq!(
        rep.bounds(),
        vec![Some(31), Some(37), Some(47), Some(47), Some(40)]
    );

    // Ours are never looser than the published row, and tau_1 matches it.
    for (ours, published) in rep.bounds().iter().zip(PAPER_TABLE2_TRAJECTORY) {
        assert!(ours.unwrap() <= published);
    }
    assert_eq!(rep.bounds()[0], Some(PAPER_TABLE2_TRAJECTORY[0]));
}

#[test]
fn table2_verdict_pattern() {
    // The paper's headline: all flows schedulable under trajectory, none
    // under holistic.
    let set = paper_example();
    let traj = analyze_all(&set, &AnalysisConfig::default());
    let hol = analyze_holistic(&set, &HolisticConfig::default());
    assert!(traj.all_schedulable());
    assert_eq!(hol.misses(), 5);
    // Our holistic row is within the same order as the published one.
    for (ours, published) in hol.bounds().iter().zip(PAPER_TABLE2_HOLISTIC) {
        let ours = ours.unwrap();
        assert!(
            ours >= published - 20 && ours <= published * 2,
            "{ours} vs {published}"
        );
    }
}

#[test]
fn improvement_claim() {
    let set = paper_example();
    let traj = analyze_all(&set, &AnalysisConfig::default());
    let hol = analyze_holistic(&set, &HolisticConfig::default());
    let ts: i64 = traj.bounds().iter().map(|b| b.unwrap()).sum();
    let hs: i64 = hol.bounds().iter().map(|b| b.unwrap()).sum();
    assert!(
        (1.0 - ts as f64 / hs as f64) > 0.25,
        "paper claims > 25% improvement"
    );
}

#[test]
fn jitter_definition_2() {
    // Definition 2: jitter = R - (sum C + (|P|-1) Lmin).
    let set = paper_example();
    let rep = analyze_all(&set, &AnalysisConfig::default());
    let mins = [19i64, 19, 29, 29, 24];
    for ((r, f), min_resp) in rep.per_flow().iter().zip(set.flows()).zip(mins) {
        let wcrt = r.wcrt.value().unwrap();
        assert_eq!(r.jitter, Some(wcrt - min_resp));
        assert_eq!(jitter_bound(&set, f, wcrt), wcrt - min_resp);
    }
}

#[test]
fn property3_degenerates_to_property2() {
    // Without non-EF traffic, the EF analysis is exactly the FIFO one.
    let set = paper_example();
    let cfg = AnalysisConfig::default();
    assert_eq!(
        analyze_ef(&set, &cfg).bounds(),
        analyze_all(&set, &cfg).bounds()
    );
}

#[test]
fn netcalc_is_bounded_but_looser() {
    let set = paper_example();
    let nc = analyze_netcalc(&set);
    let traj = analyze_all(&set, &AnalysisConfig::default());
    for (n, t) in nc.iter().zip(traj.bounds()) {
        let n = n.total.expect("stable example");
        assert!(n >= t.unwrap(), "netcalc should not beat trajectory here");
    }
}

#[test]
fn paper_calibrated_mode_brackets_published_row() {
    let set = paper_example();
    let calib = analyze_all(&set, &AnalysisConfig::paper_calibrated());
    let default = analyze_all(&set, &AnalysisConfig::default());
    for ((c, d), p) in calib
        .bounds()
        .iter()
        .zip(default.bounds())
        .zip(PAPER_TABLE2_TRAJECTORY)
    {
        let c = c.unwrap();
        assert!(c >= d.unwrap(), "calibrated mode is more pessimistic");
        assert!(c <= p, "still never looser than the published row");
    }
    // tau_2's published 43 is reproduced exactly in this mode.
    assert_eq!(calib.bounds()[1], Some(43));
}
